"""Operator algebra of the aggregation primitive (paper Table 1).

``⊗`` (message): ``add``, ``sub``, ``mul``, ``div`` (binary over
``(f_V[u], f_E[e])``), ``copylhs`` (unary, vertex features only) and
``copyrhs`` (unary, edge features only).

``⊕`` (reduce): ``sum``, ``max``, ``min`` with their identities.

Operators are described declaratively so every kernel variant (baseline,
blocked, reordered) supports the full table through one code path — the
same role DGL featgraph's operator templates play.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np


@dataclass(frozen=True)
class BinaryOp:
    """Message operator ``⊗``.

    ``fn(lhs, rhs)`` computes the element-wise message.  For unary copy
    operators one side is ignored (``uses_lhs`` / ``uses_rhs`` say which
    operand is read, which the memory-traffic model also relies on).
    """

    name: str
    fn: Callable[[Optional[np.ndarray], Optional[np.ndarray]], np.ndarray]
    uses_lhs: bool
    uses_rhs: bool

    def __call__(self, lhs, rhs):
        return self.fn(lhs, rhs)


@dataclass(frozen=True)
class ReduceOp:
    """Reduction operator ``⊕`` with its algebraic identity.

    ``ufunc`` must be an associative-commutative NumPy binary ufunc so that
    segment reduction (``reduceat``) and cross-block accumulation agree with
    sequential reduction.
    """

    name: str
    ufunc: np.ufunc
    identity: float

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Reduce two partial results (used when merging block outputs)."""
        return self.ufunc(a, b)


def _require(side: str):
    def missing(*_a, **_k):  # pragma: no cover - defensive
        raise ValueError(f"operator requires {side} operand")

    return missing


def _binary(name: str, fn) -> BinaryOp:
    def wrapped(lhs, rhs):
        if lhs is None or rhs is None:
            raise ValueError(f"binary operator {name!r} needs both operands")
        return fn(lhs, rhs)

    return BinaryOp(name=name, fn=wrapped, uses_lhs=True, uses_rhs=True)


def _copylhs(lhs, rhs):
    if lhs is None:
        raise ValueError("copylhs needs vertex features (lhs)")
    return lhs


def _copyrhs(lhs, rhs):
    if rhs is None:
        raise ValueError("copyrhs needs edge features (rhs)")
    return rhs


BINARY_OPS: Dict[str, BinaryOp] = {
    "add": _binary("add", np.add),
    "sub": _binary("sub", np.subtract),
    "mul": _binary("mul", np.multiply),
    "div": _binary("div", np.divide),
    "copylhs": BinaryOp("copylhs", _copylhs, uses_lhs=True, uses_rhs=False),
    "copyrhs": BinaryOp("copyrhs", _copyrhs, uses_lhs=False, uses_rhs=True),
}

REDUCE_OPS: Dict[str, ReduceOp] = {
    "sum": ReduceOp("sum", np.add, 0.0),
    "max": ReduceOp("max", np.maximum, -np.inf),
    "min": ReduceOp("min", np.minimum, np.inf),
}


def get_binary_op(name) -> BinaryOp:
    """Look up a ``⊗`` operator by name (pass-through for BinaryOp)."""
    if isinstance(name, BinaryOp):
        return name
    try:
        return BINARY_OPS[name]
    except KeyError:
        raise KeyError(
            f"unknown binary op {name!r}; available: {sorted(BINARY_OPS)}"
        ) from None


def get_reduce_op(name) -> ReduceOp:
    """Look up a ``⊕`` operator by name (pass-through for ReduceOp)."""
    if isinstance(name, ReduceOp):
        return name
    try:
        return REDUCE_OPS[name]
    except KeyError:
        raise KeyError(
            f"unknown reduce op {name!r}; available: {sorted(REDUCE_OPS)}"
        ) from None


def init_output(num_rows: int, dim: int, reduce_op: ReduceOp, dtype) -> np.ndarray:
    """Output matrix filled with the reducer's identity (Alg. 1 requires
    zero-init for sum; max/min need -inf/+inf)."""
    out = np.empty((num_rows, dim), dtype=dtype)
    out.fill(reduce_op.identity)
    return out


def finalize_output(out: np.ndarray, reduce_op: ReduceOp) -> np.ndarray:
    """Replace untouched identity entries of max/min outputs with 0.

    DGL defines the reduction over an empty neighbourhood as 0; leaving
    ±inf in rows with no in-edges would poison downstream layers.
    """
    if reduce_op.name in ("max", "min") and not np.isfinite(reduce_op.identity):
        np.nan_to_num(out, copy=False, posinf=0.0, neginf=0.0)
    return out
