"""Operator algebra of the aggregation primitive (paper Table 1).

``⊗`` (message): ``add``, ``sub``, ``mul``, ``div`` (binary over
``(f_V[u], f_E[e])``), ``copylhs`` (unary, vertex features only) and
``copyrhs`` (unary, edge features only).

``⊕`` (reduce): ``sum``, ``max``, ``min`` with their identities, plus
``mean`` (a ``sum`` accumulation finalized by a per-row division with the
in-degree — the GraphSAGE-mean aggregator).  Because ``mean`` is not a
plain fold, kernels accumulate it exactly like ``sum`` and the division
happens once in :func:`finalize_output`, which therefore needs the
per-row message counts.

Operators are described declaratively so every kernel variant (baseline,
blocked, reordered) supports the full table through one code path — the
same role DGL featgraph's operator templates play.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np


@dataclass(frozen=True)
class BinaryOp:
    """Message operator ``⊗``.

    ``fn(lhs, rhs)`` computes the element-wise message.  For unary copy
    operators one side is ignored (``uses_lhs`` / ``uses_rhs`` say which
    operand is read, which the memory-traffic model also relies on).
    ``ufunc`` is the underlying NumPy ufunc for true binary operators
    (``None`` for the copies); the vectorized engine uses it to compute
    messages in place into a scratch gather buffer.
    """

    name: str
    fn: Callable[[Optional[np.ndarray], Optional[np.ndarray]], np.ndarray]
    uses_lhs: bool
    uses_rhs: bool
    ufunc: Optional[np.ufunc] = None

    def __call__(self, lhs, rhs):
        return self.fn(lhs, rhs)


@dataclass(frozen=True)
class ReduceOp:
    """Reduction operator ``⊕`` with its algebraic identity.

    ``ufunc`` must be an associative-commutative NumPy binary ufunc so that
    segment reduction (``reduceat``) and cross-block accumulation agree with
    sequential reduction.  ``mean`` accumulates with ``np.add`` and defers
    the count division to :func:`finalize_output` (``needs_counts``).
    """

    name: str
    ufunc: np.ufunc
    identity: float

    @property
    def needs_counts(self) -> bool:
        """True when finalization requires per-row message counts."""
        return self.name == "mean"

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Reduce two partial results (used when merging block outputs)."""
        return self.ufunc(a, b)


def _require(side: str):
    def missing(*_a, **_k):  # pragma: no cover - defensive
        raise ValueError(f"operator requires {side} operand")

    return missing


def _binary(name: str, fn) -> BinaryOp:
    def wrapped(lhs, rhs):
        if lhs is None or rhs is None:
            raise ValueError(f"binary operator {name!r} needs both operands")
        return fn(lhs, rhs)

    return BinaryOp(name=name, fn=wrapped, uses_lhs=True, uses_rhs=True, ufunc=fn)


def _copylhs(lhs, rhs):
    if lhs is None:
        raise ValueError("copylhs needs vertex features (lhs)")
    return lhs


def _copyrhs(lhs, rhs):
    if rhs is None:
        raise ValueError("copyrhs needs edge features (rhs)")
    return rhs


BINARY_OPS: Dict[str, BinaryOp] = {
    "add": _binary("add", np.add),
    "sub": _binary("sub", np.subtract),
    "mul": _binary("mul", np.multiply),
    "div": _binary("div", np.divide),
    "copylhs": BinaryOp("copylhs", _copylhs, uses_lhs=True, uses_rhs=False),
    "copyrhs": BinaryOp("copyrhs", _copyrhs, uses_lhs=False, uses_rhs=True),
}

REDUCE_OPS: Dict[str, ReduceOp] = {
    "sum": ReduceOp("sum", np.add, 0.0),
    "max": ReduceOp("max", np.maximum, -np.inf),
    "min": ReduceOp("min", np.minimum, np.inf),
    "mean": ReduceOp("mean", np.add, 0.0),
}


def get_binary_op(name) -> BinaryOp:
    """Look up a ``⊗`` operator by name (pass-through for BinaryOp)."""
    if isinstance(name, BinaryOp):
        return name
    try:
        return BINARY_OPS[name]
    except KeyError:
        raise KeyError(
            f"unknown binary op {name!r}; available: {sorted(BINARY_OPS)}"
        ) from None


def get_reduce_op(name) -> ReduceOp:
    """Look up a ``⊕`` operator by name (pass-through for ReduceOp)."""
    if isinstance(name, ReduceOp):
        return name
    try:
        return REDUCE_OPS[name]
    except KeyError:
        raise KeyError(
            f"unknown reduce op {name!r}; available: {sorted(REDUCE_OPS)}"
        ) from None


def init_output(num_rows: int, dim: int, reduce_op: ReduceOp, dtype) -> np.ndarray:
    """Output matrix filled with the reducer's identity (Alg. 1 requires
    zero-init for sum; max/min need -inf/+inf)."""
    if reduce_op.needs_counts and not np.issubdtype(np.dtype(dtype), np.floating):
        raise ValueError(
            f"mean requires floating-point features, got dtype {np.dtype(dtype)}"
        )
    out = np.empty((num_rows, dim), dtype=dtype)
    out.fill(reduce_op.identity)
    return out


def finalize_output(
    out: np.ndarray, reduce_op: ReduceOp, counts: Optional[np.ndarray] = None
) -> np.ndarray:
    """Apply the reducer's one-time post-processing to a finished output.

    - ``max``/``min``: rows that received no message still hold the ±inf
      identity; DGL defines the reduction over an empty neighbourhood as
      0, and leaving ±inf there would poison downstream layers.  With
      ``counts`` (the per-row message counts, usually in-degrees) exactly
      the zero-count rows are zeroed, so NaN and ±inf coming from *real*
      messages propagate untouched.  Without ``counts`` the fallback
      replaces entries still equal to the identity — correct for empty
      rows, but unable to distinguish a genuine message reduction that
      lands on the identity value; callers with graph access should use
      :func:`finalize_with_graph`.
    - ``mean``: divide each row by its message count (``counts``);
      empty rows stay 0.

    Kernels call this exactly once per logical aggregation — when they
    allocated the output themselves.  When accumulating into a
    caller-provided ``out`` (block/bucket chaining) they skip it and the
    outermost caller finalizes after the last partial pass.
    """
    if reduce_op.needs_counts:
        if counts is None:
            raise ValueError("mean finalization requires per-row counts")
        if not np.issubdtype(out.dtype, np.floating):
            raise ValueError(
                f"mean requires floating-point features, got dtype {out.dtype}"
            )
        denom = np.maximum(np.asarray(counts).reshape(-1, 1), 1)
        np.true_divide(out, denom, out=out, casting="unsafe")
        return out
    if reduce_op.name in ("max", "min") and not np.isfinite(reduce_op.identity):
        if counts is not None:
            empty = np.asarray(counts).reshape(-1) == 0
            if empty.any():
                out[empty] = 0.0
        else:
            np.copyto(out, 0.0, where=out == reduce_op.identity)
    return out


def finalize_with_graph(out: np.ndarray, reduce_op: ReduceOp, graph) -> np.ndarray:
    """:func:`finalize_output` with the counts taken from ``graph``.

    The shared epilogue of every kernel that allocated its own output:
    ``mean`` needs the destination in-degrees for the division, and
    ``max``/``min`` need them to zero exactly the empty rows (so NaN/±inf
    from real messages survive finalization).  ``graph`` is anything with
    ``in_degrees()`` (for chained block passes, pass the *original*
    graph — per-block degrees would under-count).
    """
    needs = reduce_op.needs_counts or (
        reduce_op.name in ("max", "min") and not np.isfinite(reduce_op.identity)
    )
    counts = graph.in_degrees() if needs else None
    return finalize_output(out, reduce_op, counts=counts)
