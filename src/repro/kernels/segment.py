"""Segment reduction over CSR row boundaries.

``np.ufunc.reduceat`` reduces contiguous segments but mishandles empty
segments (it *copies* the element at the start index instead of producing
the identity).  All vectorized kernels funnel through
:func:`segment_reduce`, which applies the standard fix: reduce only the
non-empty rows — the next non-empty row start coincides with the current
row's end, so passing non-empty starts to ``reduceat`` yields exactly the
per-row reductions.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.operators import ReduceOp


def segment_reduce(
    values: np.ndarray,
    indptr: np.ndarray,
    reduce_op: ReduceOp,
    out: np.ndarray,
) -> np.ndarray:
    """Reduce ``values`` rows into ``out`` along CSR segments.

    Parameters
    ----------
    values:
        ``(nnz, d)`` per-edge messages, ordered to match ``indptr``.
    indptr:
        ``(num_rows + 1,)`` segment boundaries.
    out:
        ``(num_rows, d)`` accumulator; row ``v`` becomes
        ``out[v] ⊕ reduce(values[indptr[v]:indptr[v+1]])``.
    """
    starts = indptr[:-1]
    ends = indptr[1:]
    nonempty = ends > starts
    if not nonempty.any():
        return out
    reduced = reduce_op.ufunc.reduceat(values, starts[nonempty], axis=0)
    out[nonempty] = reduce_op.ufunc(out[nonempty], reduced)
    return out
