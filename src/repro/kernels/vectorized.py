"""Vectorized segment-reduce aggregation engine.

This is the array-native inner kernel every optimized variant funnels
through.  One pass is::

    gather   lhs = f_V[indices],  rhs = f_E[edge_ids]     (NumPy fancy index)
    message  msg = lhs ⊗ rhs                              (element-wise ufunc)
    reduce   f_O[v] ⊕= reduceat(msg, row starts)          (segment reduce)

so the whole AP runs in compiled NumPy loops with no Python-level
iteration over destinations — the role LIBXSMM's JITed SIMD kernels play
in the paper.  The empty-row ``reduceat`` pitfall is handled by
:func:`repro.kernels.segment.segment_reduce`.

Three public entry points:

- :func:`aggregate_vectorized` — the ``kernel="vectorized"`` variant: one
  unchunked pass over the whole graph (plus a scipy CSR SpMM fast path
  for the ``copylhs``/``sum``-family workhorse).
- :func:`segment_pass` — one gather → ⊗ → reduceat pass over a row range,
  accumulated into the matching output rows.  The reordered kernel runs
  its per-bucket passes and (through it) the blocked kernel runs its
  per-block passes on this exact function, so all variants share one
  inner kernel and differ only in iteration structure.
- ``mean`` support: the engine accumulates like ``sum`` and the count
  division happens once in ``finalize_output`` (see
  :mod:`repro.kernels.operators`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.baseline import _feature_dim, _feature_dtype
from repro.kernels.operators import (
    BinaryOp,
    ReduceOp,
    finalize_with_graph,
    get_binary_op,
    get_reduce_op,
    init_output,
)
from repro.kernels.segment import segment_reduce


def segment_pass(
    graph: CSRGraph,
    f_v: Optional[np.ndarray],
    f_e: Optional[np.ndarray],
    bop: BinaryOp,
    rop: ReduceOp,
    out: np.ndarray,
    row_lo: int = 0,
    row_hi: Optional[int] = None,
) -> np.ndarray:
    """One vectorized pass over destination rows ``[row_lo, row_hi)``.

    Gathers the operand rows of every edge in the range, applies ``⊗``
    edge-wise, and segment-reduces the messages into ``out[row_lo:row_hi]``
    with ``⊕``.  ``out`` rows must already hold the reducer identity (or a
    partial result being chained); rows with no edges in the range are
    left untouched.  This function never finalizes — callers chaining
    several passes finalize once at the end.
    """
    indptr = graph.indptr
    if row_hi is None:
        row_hi = graph.num_vertices
    lo, hi = int(indptr[row_lo]), int(indptr[row_hi])
    if lo == hi:
        return out
    lhs = f_v[graph.indices[lo:hi]] if bop.uses_lhs else None
    if bop.uses_rhs:
        # Zero-copy slice when edge ids are the identity permutation.
        if graph.has_contiguous_edge_ids:
            rhs = f_e[lo:hi]
        else:
            rhs = f_e[graph.edge_ids[lo:hi]]
    else:
        rhs = None
    if (
        bop.ufunc is not None
        and lhs is not None
        and rhs is not None
        and lhs.dtype == rhs.dtype
        and np.issubdtype(lhs.dtype, np.floating)
    ):
        # `lhs` is a private gather buffer — compute the message into it
        # instead of allocating a third edge-sized intermediate.
        msg = bop.ufunc(lhs, rhs, out=lhs)
    else:
        msg = bop(lhs, rhs)
    local_indptr = indptr[row_lo : row_hi + 1] - lo
    segment_reduce(msg, local_indptr, rop, out[row_lo:row_hi])
    return out


def aggregate_vectorized(
    graph: CSRGraph,
    f_v: Optional[np.ndarray],
    f_e: Optional[np.ndarray] = None,
    binary_op="copylhs",
    reduce_op="sum",
    out: Optional[np.ndarray] = None,
    row_chunk: Optional[int] = None,
) -> np.ndarray:
    """Fully vectorized AP: ``f_O[v] = ⊕_u (f_V[u] ⊗ f_E[e_uv])``.

    Parameters
    ----------
    graph:
        Destination-major CSR adjacency.
    f_v, f_e:
        Vertex / edge feature matrices; either may be ``None`` when the
        operator doesn't read it.
    binary_op, reduce_op:
        Operator names (or objects) from paper Table 1, plus ``mean``.
    out:
        Optional accumulator pre-filled with the reducer identity.  When
        given, the kernel only ⊕-accumulates partial results into it and
        skips finalization (±inf cleanup / mean division) — the caller
        finalizes after its last chained pass.
    row_chunk:
        When set, process destinations in buckets of this many rows so the
        per-edge message intermediate stays cache-sized (this is how the
        reordered kernel calls the engine); ``None`` runs one full pass.
    """
    bop = get_binary_op(binary_op)
    rop = get_reduce_op(reduce_op)
    dim = _feature_dim(f_v, f_e)
    dtype = _feature_dtype(f_v, f_e)
    created = out is None
    if created:
        out = init_output(graph.num_vertices, dim, rop, dtype)

    if bop.name == "copylhs" and rop.ufunc is np.add:
        _spmm_fast_path(graph, f_v, out)
    elif row_chunk:
        n = graph.num_vertices
        step = max(int(row_chunk), 1)
        for row_lo in range(0, n, step):
            segment_pass(
                graph, f_v, f_e, bop, rop, out, row_lo, min(row_lo + step, n)
            )
    else:
        segment_pass(graph, f_v, f_e, bop, rop, out)

    if created:
        finalize_with_graph(out, rop, graph)
    return out


def _spmm_fast_path(graph: CSRGraph, f_v: np.ndarray, out: np.ndarray) -> None:
    """``f_O += A @ f_V`` via scipy's compiled CSR kernel.

    Valid for any add-accumulating reducer (``sum`` and the ``mean``
    pre-division accumulation).
    """
    adj = graph.to_scipy()
    out += adj @ f_v
