"""Aggregation-primitive (AP) kernels.

The AP is the tuple ``(f_V, f_E, ⊗, ⊕, f_O)`` of paper Section 2.1: an
element-wise binary/unary message operator ``⊗`` combined edge-wise and an
element-wise reducer ``⊕`` accumulating messages into destination rows.

Kernel taxonomy (mirrors the paper's optimization ladder, Fig. 4):

- :mod:`repro.kernels.baseline` — Alg. 1, the DGL-style per-destination
  pull loop (our stand-in for the un-optimized DGL 0.5.3 kernel).
- :mod:`repro.kernels.blocked` — Alg. 2, source-dimension cache blocking.
- :mod:`repro.kernels.reordered` — Alg. 3, loop reordering with full-width
  vector inner kernels (our stand-in for LIBXSMM JITed SIMD).
- :mod:`repro.kernels.scheduling` — OpenMP static/dynamic scheduling
  simulator used to quantify load imbalance on power-law graphs.
- :mod:`repro.kernels.spmm` — the public ``aggregate`` dispatch API
  (the role of DGL featgraph's single SpMM template).
- :mod:`repro.kernels.tuning` — block-count auto-tuner driven by the
  cache model.
"""

from repro.kernels.operators import (
    BINARY_OPS,
    REDUCE_OPS,
    BinaryOp,
    ReduceOp,
    get_binary_op,
    get_reduce_op,
)
from repro.kernels.spmm import AggregationSpec, KERNELS, aggregate
from repro.kernels.scheduling import ScheduleResult, simulate_schedule
from repro.kernels.tuning import choose_num_blocks

__all__ = [
    "BinaryOp",
    "ReduceOp",
    "BINARY_OPS",
    "REDUCE_OPS",
    "get_binary_op",
    "get_reduce_op",
    "aggregate",
    "AggregationSpec",
    "KERNELS",
    "simulate_schedule",
    "ScheduleResult",
    "choose_num_blocks",
]
