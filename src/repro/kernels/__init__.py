"""Aggregation-primitive (AP) kernels.

The AP is the tuple ``(f_V, f_E, ⊗, ⊕, f_O)`` of paper Section 2.1: an
element-wise binary/unary message operator ``⊗`` combined edge-wise and an
element-wise reducer ``⊕`` accumulating messages into destination rows.

Kernel taxonomy (mirrors the paper's optimization ladder, Fig. 4):

- :mod:`repro.kernels.baseline` — Alg. 1, the DGL-style per-destination
  pull loop (our stand-in for the un-optimized DGL 0.5.3 kernel).
- :mod:`repro.kernels.vectorized` — the array-native segment-reduce
  engine (gather → ⊗ → ``reduceat``); the shared inner kernel of every
  optimized variant and the ``auto`` default below the block threshold
  (our stand-in for LIBXSMM JITed SIMD).
- :mod:`repro.kernels.blocked` — Alg. 2, source-dimension cache blocking;
  each per-block pass runs through the vectorized engine.
- :mod:`repro.kernels.reordered` — Alg. 3, loop reordering: cache-sized
  destination buckets over the vectorized engine.
- :mod:`repro.kernels.parallel` — the thread-pool execution engine:
  the vectorized inner kernel run over disjoint destination-row chunks
  with real OpenMP-style static/dynamic/balanced chunking policies
  (the paper's destination-dimension parallelization).
- :mod:`repro.kernels.scheduling` — OpenMP static/dynamic scheduling
  simulator used to quantify load imbalance on power-law graphs.
- :mod:`repro.kernels.spmm` — the public ``aggregate`` dispatch API
  (the role of DGL featgraph's single SpMM template).
- :mod:`repro.kernels.tuning` — block-count and chunking-policy
  auto-tuners driven by the cache and scheduling models.
"""

from repro.kernels.operators import (
    BINARY_OPS,
    REDUCE_OPS,
    BinaryOp,
    ReduceOp,
    get_binary_op,
    get_reduce_op,
)
from repro.kernels.parallel import (
    aggregate_parallel,
    plan_row_chunks,
    resolve_num_threads,
)
from repro.kernels.spmm import AggregationSpec, KERNELS, aggregate, validate_kernel
from repro.kernels.scheduling import ScheduleResult, simulate_schedule
from repro.kernels.tuning import choose_num_blocks, choose_schedule
from repro.kernels.vectorized import aggregate_vectorized, segment_pass

__all__ = [
    "BinaryOp",
    "ReduceOp",
    "BINARY_OPS",
    "REDUCE_OPS",
    "get_binary_op",
    "get_reduce_op",
    "aggregate",
    "aggregate_parallel",
    "aggregate_vectorized",
    "plan_row_chunks",
    "resolve_num_threads",
    "segment_pass",
    "AggregationSpec",
    "KERNELS",
    "validate_kernel",
    "simulate_schedule",
    "ScheduleResult",
    "choose_num_blocks",
    "choose_schedule",
]
