"""Cache-blocked aggregation — paper Algorithm 2.

Blocking splits the *source* vertex range into ``nB`` contiguous blocks
and makes one pass over all destinations per block, so that the active
slice of ``f_V`` stays cache-resident (the paper blocks ``f_V`` rather
than ``f_O`` to keep destination ownership race-free, Section 4.2).

``build_blocks`` materializes the per-block CSR matrices of Alg. 2 line 2
in a single O(E) pass; :class:`BlockedGraph` caches them so training reuses
the block structure across layers and epochs, exactly as DistGNN builds
them once per graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.graph.csr import CSRGraph, INDEX_DTYPE
from repro.kernels.operators import finalize_with_graph, get_binary_op, get_reduce_op, init_output
from repro.kernels.baseline import _feature_dim, _feature_dtype
from repro.kernels.reordered import aggregate_reordered


def block_bounds(num_src: int, num_blocks: int) -> np.ndarray:
    """Source-range boundaries for ``num_blocks`` equal blocks.

    Returns ``(num_blocks + 1,)`` offsets; block ``i`` spans
    ``[bounds[i], bounds[i+1])``.  Matches the paper's
    ``B = ceil(|V| / nB)`` convention.
    """
    if num_blocks < 1:
        raise ValueError("num_blocks must be >= 1")
    block_size = -(-num_src // num_blocks)  # ceil division
    bounds = np.minimum(
        np.arange(num_blocks + 1, dtype=INDEX_DTYPE) * block_size, num_src
    )
    return bounds


def build_blocks(graph: CSRGraph, num_blocks: int) -> List[CSRGraph]:
    """Per-block CSR matrices (Alg. 2 line 2) in one pass over the edges.

    Each block keeps the full destination row set but only the edges whose
    source falls in the block's range; column ids remain global so feature
    gathers need no translation.
    """
    bounds = block_bounds(graph.num_src, num_blocks)
    if num_blocks == 1:
        return [graph]
    src, dst, eid = graph.to_coo()
    block_size = int(bounds[1] - bounds[0]) if num_blocks > 0 else graph.num_src
    block_of = np.minimum(src // max(block_size, 1), num_blocks - 1)
    order = np.argsort(block_of, kind="stable")  # preserves dst-major order
    src, dst, eid, block_of = src[order], dst[order], eid[order], block_of[order]
    edge_splits = np.searchsorted(block_of, np.arange(num_blocks + 1))
    blocks: List[CSRGraph] = []
    n = graph.num_vertices
    for b in range(num_blocks):
        lo, hi = edge_splits[b], edge_splits[b + 1]
        counts = np.bincount(dst[lo:hi], minlength=n).astype(INDEX_DTYPE)
        indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        blocks.append(
            CSRGraph(
                indptr=indptr,
                indices=src[lo:hi],
                edge_ids=eid[lo:hi],
                num_src=graph.num_src,
            )
        )
    return blocks


@dataclass
class BlockedGraph:
    """A graph pre-split into source blocks, reusable across epochs."""

    graph: CSRGraph
    num_blocks: int
    blocks: List[CSRGraph]
    bounds: np.ndarray

    @classmethod
    def build(cls, graph: CSRGraph, num_blocks: int) -> "BlockedGraph":
        return cls(
            graph=graph,
            num_blocks=num_blocks,
            blocks=build_blocks(graph, num_blocks),
            bounds=block_bounds(graph.num_src, num_blocks),
        )

    @property
    def block_size(self) -> int:
        return int(self.bounds[1] - self.bounds[0]) if self.num_blocks else 0


def aggregate_blocked(
    graph,
    f_v: Optional[np.ndarray],
    f_e: Optional[np.ndarray] = None,
    binary_op="copylhs",
    reduce_op="sum",
    num_blocks: int = 1,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Algorithm 2: blocked passes, each lowered through the Alg. 3 kernel.

    ``graph`` may be a :class:`CSRGraph` (blocks built on the fly) or a
    pre-built :class:`BlockedGraph`.
    """
    if isinstance(graph, BlockedGraph):
        blocked = graph
    else:
        blocked = BlockedGraph.build(graph, num_blocks)
    bop = get_binary_op(binary_op)
    rop = get_reduce_op(reduce_op)
    dim = _feature_dim(f_v, f_e)
    dtype = _feature_dtype(f_v, f_e)
    created = out is None
    if created:
        out = init_output(blocked.graph.num_vertices, dim, rop, dtype)
    for block in blocked.blocks:
        # Accumulating into `out` across blocks relies on ⊕ associativity;
        # each pass touches all destination rows (the nB passes of f_O the
        # paper's traffic analysis charges for).  Each per-block pass runs
        # through the shared vectorized inner kernel.
        aggregate_reordered(
            block, f_v, f_e, binary_op=bop, reduce_op=rop, out=out
        )
    if created:
        # Counts come from the *original* graph: per-block degrees would
        # under-count split rows.
        finalize_with_graph(out, rop, blocked.graph)
    return out
