"""Baseline aggregation primitive — paper Algorithm 1.

This is the un-optimized DGL-style kernel: one pass over destination
vertices, pulling each neighbour's feature row and reducing it into
``f_O[v]``.  Parallelisation in DGL distributes destinations over OpenMP
threads; in this Python reproduction the per-destination loop is a real
Python-level loop, playing the role of the scalar-ordered, unblocked C++
kernel that the optimized variants beat.

The dense reference implementation (`aggregate_dense_reference`) is used
by the test suite as ground truth for every operator combination.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.operators import (
    BinaryOp,
    ReduceOp,
    finalize_with_graph,
    get_binary_op,
    get_reduce_op,
    init_output,
)


def aggregate_baseline(
    graph: CSRGraph,
    f_v: Optional[np.ndarray],
    f_e: Optional[np.ndarray] = None,
    binary_op="copylhs",
    reduce_op="sum",
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Algorithm 1: for each destination ``v``, reduce ``f_V[u] ⊗ f_E[e_uv]``.

    Parameters
    ----------
    graph:
        Destination-major CSR adjacency.
    f_v:
        ``(num_src, d)`` vertex features (``None`` only for ``copyrhs``).
    f_e:
        ``(num_edges_global, d)`` edge features, indexed by the graph's
        ``edge_ids`` (``None`` for unary ``copylhs``).
    out:
        Optional pre-initialized accumulator (used to chain partial
        passes).  When given, the kernel ⊕-accumulates into it and skips
        finalization; the caller finalizes after the last pass.
    """
    bop: BinaryOp = get_binary_op(binary_op)
    rop: ReduceOp = get_reduce_op(reduce_op)
    dim = _feature_dim(f_v, f_e)
    dtype = _feature_dtype(f_v, f_e)
    created = out is None
    if created:
        out = init_output(graph.num_vertices, dim, rop, dtype)
    indptr, indices, eids = graph.indptr, graph.indices, graph.edge_ids
    for v in range(graph.num_vertices):
        lo, hi = indptr[v], indptr[v + 1]
        if lo == hi:
            continue
        lhs = f_v[indices[lo:hi]] if bop.uses_lhs else None
        rhs = f_e[eids[lo:hi]] if bop.uses_rhs else None
        msg = bop(lhs, rhs)
        out[v] = rop.ufunc(out[v], rop.ufunc.reduce(msg, axis=0))
    if created:
        finalize_with_graph(out, rop, graph)
    return out


def aggregate_dense_reference(
    graph: CSRGraph,
    f_v: Optional[np.ndarray],
    f_e: Optional[np.ndarray] = None,
    binary_op="copylhs",
    reduce_op="sum",
) -> np.ndarray:
    """Edge-at-a-time reference (the literal Alg. 1 inner loop).

    O(E) Python iterations — test-only ground truth.
    """
    bop = get_binary_op(binary_op)
    rop = get_reduce_op(reduce_op)
    dim = _feature_dim(f_v, f_e)
    dtype = _feature_dtype(f_v, f_e)
    out = init_output(graph.num_vertices, dim, rop, dtype)
    for v, nbrs, eids in graph.iter_rows():
        for u, e in zip(nbrs, eids):
            lhs = f_v[u] if bop.uses_lhs else None
            rhs = f_e[e] if bop.uses_rhs else None
            out[v] = rop.ufunc(out[v], bop(lhs, rhs))
    return finalize_with_graph(out, rop, graph)


def _feature_dim(f_v, f_e) -> int:
    for f in (f_v, f_e):
        if f is not None:
            if f.ndim != 2:
                raise ValueError(f"features must be 2-D, got shape {f.shape}")
            return int(f.shape[1])
    raise ValueError("at least one of f_v, f_e must be provided")


def _feature_dtype(f_v, f_e):
    for f in (f_v, f_e):
        if f is not None:
            return f.dtype
    raise ValueError("at least one of f_v, f_e must be provided")
