"""Public aggregation API — the featgraph-style single SpMM template.

``aggregate`` dispatches one of the kernel variants over the full operator
table.  This is the only aggregation entry point the rest of the library
(models, trainers, distributed algorithms) uses, mirroring how DGL funnels
all message passing through one SpMM template (paper Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.baseline import aggregate_baseline, aggregate_dense_reference
from repro.kernels.blocked import BlockedGraph, aggregate_blocked
from repro.kernels.parallel import (
    SCHEDULES,
    aggregate_parallel,
    requested_num_threads,
)
from repro.kernels.reordered import aggregate_reordered
from repro.kernels.vectorized import aggregate_vectorized


@dataclass(frozen=True)
class AggregationSpec:
    """A fully specified AP instance ``(⊗, ⊕, kernel, nB, threads)``."""

    binary_op: str = "copylhs"
    reduce_op: str = "sum"
    kernel: str = "auto"
    num_blocks: int = 1
    num_threads: Optional[int] = None


#: kernel name -> callable(graph, f_v, f_e, binary_op, reduce_op, **kw)
KERNELS: Dict[str, Callable] = {
    "baseline": aggregate_baseline,
    "vectorized": aggregate_vectorized,
    "parallel": aggregate_parallel,
    "reordered": aggregate_reordered,
    "blocked": aggregate_blocked,
    "reference": aggregate_dense_reference,
}

#: Heuristic vertex-count threshold above which the working set stops
#: fitting in a socket-sized LLC.  Below it ``auto`` runs the unchunked
#: vectorized engine; above it the reordered variant, which runs the same
#: engine in cache-sized destination buckets so the per-edge message
#: intermediate stays bounded.  Explicit source blocking (Alg. 2) is
#: opt-in — pass ``num_blocks > 1`` or a pre-built :class:`BlockedGraph`;
#: the benchmark baseline (``BENCH_kernels.json``) shows on-the-fly block
#: construction costs more than one engine pass, so ``auto`` never picks
#: it blind.
_AUTO_BLOCK_THRESHOLD = 1 << 15


def validate_kernel(name: str) -> str:
    """Fail fast on an unknown kernel name (``"auto"`` is always valid).

    Trainers call this at construction time so a typo in
    ``TrainConfig.kernel`` surfaces before the first epoch, not mid-run.
    """
    if name != "auto" and name not in KERNELS:
        raise KeyError(
            f"unknown kernel {name!r}; available: ['auto'] + {sorted(KERNELS)}"
        )
    return name


def aggregate(
    graph: Union[CSRGraph, BlockedGraph],
    f_v: Optional[np.ndarray],
    f_e: Optional[np.ndarray] = None,
    binary_op: str = "copylhs",
    reduce_op: str = "sum",
    kernel: str = "auto",
    num_blocks: Optional[int] = None,
    num_threads: Optional[int] = None,
    schedule: Optional[str] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Compute the aggregation primitive ``f_O[v] = ⊕_u (f_V[u] ⊗ f_E[e_uv])``.

    Parameters
    ----------
    graph:
        CSR adjacency (or a pre-blocked :class:`BlockedGraph`).
    f_v, f_e:
        Vertex / edge feature matrices; either may be ``None`` when the
        operator doesn't read it (``copyrhs`` / ``copylhs``).
    binary_op, reduce_op:
        Operator names from paper Table 1 (plus ``mean``).
    kernel:
        - ``"baseline"`` — Alg. 1, the per-destination Python loop (the
          un-optimized DGL stand-in; for measurement only).
        - ``"vectorized"`` — the array-native segment-reduce engine
          (:mod:`repro.kernels.vectorized`): one gather → ⊗ → ``reduceat``
          pass over the whole graph, with a scipy SpMM fast path for the
          ``copylhs``/add-accumulating workhorse.
        - ``"parallel"`` — the same engine over disjoint destination-row
          chunks on a thread pool (:mod:`repro.kernels.parallel`);
          bit-identical outputs, ``num_threads``/``schedule`` control the
          workers and chunking policy.
        - ``"reordered"`` — Alg. 3: the same engine run bucket-by-bucket
          so the per-edge message intermediate stays cache-sized.
        - ``"blocked"`` — Alg. 2 over Alg. 3: source-range blocks, each
          pass through the shared vectorized inner kernel.
        - ``"reference"`` — edge-at-a-time dense reference (test-only).
        - ``"auto"`` — ``parallel`` when threads were requested
          (``num_threads > 1`` or ``REPRO_NUM_THREADS``); otherwise
          ``vectorized`` for graphs below ``_AUTO_BLOCK_THRESHOLD``
          sources and ``reordered`` (the bucketed engine) above it;
          ``blocked`` whenever ``num_blocks > 1`` is requested or a
          pre-built :class:`BlockedGraph` is passed.
    num_blocks:
        Block count for the blocked kernel; ``None`` lets the auto-tuner
        pick (see :mod:`repro.kernels.tuning`).
    num_threads:
        Worker count for the parallel kernel (and the ``auto`` trigger
        above); ignored by explicitly-named single-threaded kernels.
        ``None`` falls back to the ``REPRO_NUM_THREADS`` environment
        variable, then (for an explicit ``kernel="parallel"``) the
        machine's capped cpu count.
    schedule:
        Parallel kernel chunking policy — ``"static"`` / ``"dynamic"`` /
        ``"balanced"``; ``None`` lets
        :func:`repro.kernels.tuning.choose_schedule` pick from the
        graph's simulated load imbalance.
    out:
        Optional ``(num_vertices, d)`` accumulator, identical semantics
        across every kernel except ``"reference"`` (which rejects it):
        ``out`` must be pre-filled with the reducer identity (see
        :func:`repro.kernels.operators.init_output`) or hold a partial
        result being chained; the kernel ⊕-accumulates row reductions
        into it and **skips finalization** — no ±inf→0 cleanup for
        ``max``/``min`` and no count division for ``mean``.  Callers
        chaining passes call
        :func:`repro.kernels.operators.finalize_output` once after the
        last pass.  When ``out`` is ``None`` the kernel allocates,
        accumulates, and finalizes, returning a ready-to-use output.
    """
    from repro.kernels.instrumentation import time_ap

    # Validate up front: a typo'd policy or non-positive thread count
    # must fail even when the resolved kernel ends up single-threaded
    # and would never consult them.
    if schedule is not None and schedule not in SCHEDULES:
        raise ValueError(
            f"unknown schedule {schedule!r}; available: {list(SCHEDULES)}"
        )
    requested_num_threads(num_threads)

    if isinstance(graph, BlockedGraph):
        with time_ap():
            return aggregate_blocked(
                graph, f_v, f_e, binary_op=binary_op, reduce_op=reduce_op, out=out
            )

    if kernel == "auto":
        kernel, num_blocks = _auto_select(graph, f_v, f_e, num_blocks, num_threads)

    fn = KERNELS.get(kernel)
    if fn is None:
        raise KeyError(f"unknown kernel {kernel!r}; available: {sorted(KERNELS)}")
    kwargs = dict(binary_op=binary_op, reduce_op=reduce_op)
    if kernel != "reference":
        kwargs["out"] = out
    elif out is not None:
        raise ValueError("the reference kernel does not accumulate into out")
    if kernel == "blocked":
        if num_blocks is None:
            from repro.kernels.tuning import choose_num_blocks

            num_blocks = choose_num_blocks(graph, _dim_of(f_v, f_e))
        kwargs["num_blocks"] = num_blocks
    if kernel == "parallel":
        kwargs["num_threads"] = num_threads
        kwargs["schedule"] = schedule
    with time_ap():
        return fn(graph, f_v, f_e, **kwargs)


def _auto_select(graph, f_v, f_e, num_blocks, num_threads=None):
    if num_blocks is not None and num_blocks > 1:
        return "blocked", num_blocks
    threads = requested_num_threads(num_threads)
    if threads is not None and threads > 1:
        return "parallel", num_blocks
    if graph.num_src >= _AUTO_BLOCK_THRESHOLD:
        return "reordered", num_blocks
    return "vectorized", num_blocks


def _dim_of(f_v, f_e) -> int:
    for f in (f_v, f_e):
        if f is not None:
            return int(f.shape[1])
    raise ValueError("at least one of f_v, f_e must be provided")
