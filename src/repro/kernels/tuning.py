"""Kernel auto-tuners: block count and parallel chunking policy.

The paper notes that "finding the best block size is challenging since
many graphs follow a power law" (Section 4.2) and picks the sweet spot
where total memory IO is smallest (Fig. 3).  We automate exactly that
criterion: sweep candidate ``nB`` values through the analytic traffic
model and return the minimizer.

The same power-law skew drives the thread-scheduling choice (Fig. 4's
"DS" bar): :func:`choose_schedule` simulates the static equal-count
split over the real per-destination work distribution and switches the
parallel engine to degree-aware ``balanced`` chunking when the simulated
imbalance says static ranges would idle most threads.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.graph.csr import CSRGraph

#: Default nB sweep, matching the paper's Table 3 columns.
DEFAULT_CANDIDATES = (1, 2, 4, 8, 16, 32, 64)


def choose_num_blocks(
    graph: CSRGraph,
    feature_dim: int,
    cache_vectors: Optional[int] = None,
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
    feature_bytes: int = 4,
) -> int:
    """Pick the ``nB`` minimizing predicted total memory IO (Fig. 3 criterion)."""
    from repro.cachesim.analytic import cache_vectors_for
    from repro.cachesim.traffic import ap_traffic

    if cache_vectors is None:
        cache_vectors = cache_vectors_for(graph.num_src, feature_dim, feature_bytes)
    best_nb, best_io = 1, float("inf")
    for nb in candidates:
        if nb < 1 or nb > max(graph.num_src, 1):
            continue
        traffic = ap_traffic(
            graph,
            feature_dim,
            num_blocks=nb,
            cache_vectors=cache_vectors,
            feature_bytes=feature_bytes,
        )
        if traffic.total < best_io:
            best_io, best_nb = traffic.total, nb
    return best_nb


#: Simulated static imbalance above which the parallel engine switches
#: from equal-count to degree-aware (``balanced``) chunking.
SCHEDULE_IMBALANCE_THRESHOLD = 1.15


def choose_schedule(
    graph: CSRGraph,
    num_threads: int,
    imbalance_threshold: float = SCHEDULE_IMBALANCE_THRESHOLD,
) -> str:
    """Pick the parallel engine's chunking policy for this graph.

    Runs the OpenMP scheduling simulator's *static* split over the real
    per-destination work distribution (in-degrees): if the heaviest
    equal-count range exceeds the ideal makespan by more than
    ``imbalance_threshold`` (power-law graphs — the paper's
    OGBN-Products case), degree-aware ``balanced`` ranges are worth the
    prefix-sum; otherwise plain ``static`` ranges are free and optimal
    (the Reddit case).  All policies produce bit-identical outputs; only
    the makespan differs.
    """
    if num_threads <= 1:
        return "static"
    from repro.kernels.scheduling import per_destination_work, simulate_schedule

    work = per_destination_work(graph)
    static = simulate_schedule(work, num_threads, policy="static")
    return "balanced" if static.imbalance > imbalance_threshold else "static"
