"""Low-precision payload compression for communication.

The paper's future work: "To further reduce communication volume, we will
deploy low-precision data formats such FP16 and BFLOAT16".  This module
implements both casts for DRPA payloads:

- ``fp16``: IEEE half precision via NumPy (5 exponent bits — narrow range,
  fine for normalized aggregates);
- ``bf16``: bfloat16 emulated by zeroing the low 16 mantissa bits of
  float32 (8 exponent bits — full float32 range, 8-bit mantissa), stored
  in a uint16 view so the wire size is genuinely halved.

Compression is applied at ``isend`` time, so the byte counters — and
therefore every communication-volume result — see the real wire sizes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class PayloadCodec:
    """Encode/decode feature-row payloads at a given wire precision."""

    VALID = ("none", "fp16", "bf16")

    def __init__(self, mode: str = "none"):
        if mode not in self.VALID:
            raise ValueError(f"unknown compression {mode!r}; use one of {self.VALID}")
        self.mode = mode

    @property
    def ratio(self) -> float:
        """Wire bytes per float32 element."""
        return 4.0 if self.mode == "none" else 2.0

    def encode(self, payload: np.ndarray) -> np.ndarray:
        if self.mode == "none":
            return payload
        arr = np.asarray(payload, dtype=np.float32)
        if self.mode == "fp16":
            with np.errstate(over="ignore"):  # out-of-range -> inf, by design
                return arr.astype(np.float16)
        # bf16: keep the top 16 bits of the float32 pattern.
        bits = arr.view(np.uint32)
        return (bits >> np.uint32(16)).astype(np.uint16)

    def decode(self, wire: np.ndarray, dtype=np.float32) -> np.ndarray:
        if self.mode == "none":
            return np.asarray(wire, dtype=dtype)
        if self.mode == "fp16":
            return np.asarray(wire, dtype=np.float16).astype(dtype)
        bits = np.asarray(wire, dtype=np.uint16).astype(np.uint32) << np.uint32(16)
        return bits.view(np.float32).astype(dtype)

    def roundtrip_error(self, payload: np.ndarray) -> float:
        """Max relative error of one encode/decode cycle (diagnostics)."""
        arr = np.asarray(payload, dtype=np.float32)
        back = self.decode(self.encode(arr))
        denom = np.maximum(np.abs(arr), 1e-12)
        return float(np.max(np.abs(back - arr) / denom))
