"""Per-rank communication accounting.

Every simulated collective and point-to-point message records its bytes
here; the network model turns the totals into modelled time, and the
benchmarks report them as the paper's "communication volume".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class CommCounters:
    """Byte/message counters for one world."""

    num_ranks: int
    bytes_sent: List[int] = field(default_factory=list)
    bytes_received: List[int] = field(default_factory=list)
    messages_sent: List[int] = field(default_factory=list)
    collective_calls: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.bytes_sent:
            self.bytes_sent = [0] * self.num_ranks
            self.bytes_received = [0] * self.num_ranks
            self.messages_sent = [0] * self.num_ranks

    def record_p2p(self, src: int, dst: int, nbytes: int) -> None:
        if src != dst:  # rank-local copies are free on a real fabric too
            self.bytes_sent[src] += nbytes
            self.bytes_received[dst] += nbytes
            self.messages_sent[src] += 1

    def record_collective(self, name: str, per_rank_bytes: List[Tuple[int, int]]):
        """Record a collective: list of (sent, received) per rank."""
        self.collective_calls[name] = self.collective_calls.get(name, 0) + 1
        for rank, (sent, recv) in enumerate(per_rank_bytes):
            self.bytes_sent[rank] += sent
            self.bytes_received[rank] += recv

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_sent)

    @property
    def max_rank_bytes(self) -> int:
        """Busiest rank's traffic — the scaling bottleneck."""
        if not self.bytes_sent:
            return 0
        return max(
            s + r for s, r in zip(self.bytes_sent, self.bytes_received)
        )

    def snapshot(self) -> "CommCounters":
        """Copy for before/after deltas."""
        c = CommCounters(self.num_ranks)
        c.bytes_sent = list(self.bytes_sent)
        c.bytes_received = list(self.bytes_received)
        c.messages_sent = list(self.messages_sent)
        c.collective_calls = dict(self.collective_calls)
        return c

    def delta_since(self, before: "CommCounters") -> "CommCounters":
        c = CommCounters(self.num_ranks)
        c.bytes_sent = [a - b for a, b in zip(self.bytes_sent, before.bytes_sent)]
        c.bytes_received = [
            a - b for a, b in zip(self.bytes_received, before.bytes_received)
        ]
        c.messages_sent = [
            a - b for a, b in zip(self.messages_sent, before.messages_sent)
        ]
        c.collective_calls = {
            k: v - before.collective_calls.get(k, 0)
            for k, v in self.collective_calls.items()
        }
        return c

    def reset(self) -> None:
        self.bytes_sent = [0] * self.num_ranks
        self.bytes_received = [0] * self.num_ranks
        self.messages_sent = [0] * self.num_ranks
        self.collective_calls = {}
