"""Collective operations over the simulated world.

All collectives are *lockstep*: the caller passes the per-rank inputs for
every rank at once and receives per-rank outputs, which is how the
distributed trainer drives the ranks.  Byte accounting follows the
standard cost of each collective on a fat network:

- AllReduce: ring/Rabenseifner volume, ``2 * (P-1)/P * nbytes`` per rank;
- AlltoAll(v): each rank sends its off-diagonal row;
- AllGather: each rank sends its block to ``P - 1`` peers;
- Broadcast: root sends ``P - 1`` copies (tree pipelining affects time,
  not volume per link endpoint).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.comm.communicator import World


def _check(world: World, items: Sequence) -> None:
    if len(items) != world.num_ranks:
        raise ValueError(
            f"expected one entry per rank ({world.num_ranks}), got {len(items)}"
        )


def all_reduce(
    world: World, arrays: Sequence[np.ndarray], op: str = "sum"
) -> List[np.ndarray]:
    """AllReduce: every rank receives the element-wise reduction.

    Used once per epoch for weight-gradient synchronization (paper: "For
    parameter sync among the models, in each epoch, we use AllReduce").
    """
    _check(world, arrays)
    arrays = [np.asarray(a) for a in arrays]
    shape = arrays[0].shape
    for a in arrays:
        if a.shape != shape:
            raise ValueError("all_reduce requires identical shapes")
    if op == "sum":
        total = np.sum(arrays, axis=0)
    elif op == "mean":
        total = np.mean(arrays, axis=0)
    elif op == "max":
        total = np.max(arrays, axis=0)
    elif op == "min":
        total = np.min(arrays, axis=0)
    else:
        raise ValueError(f"unsupported all_reduce op {op!r}")
    p = world.num_ranks
    nbytes = int(arrays[0].nbytes)
    ring = int(2 * (p - 1) / p * nbytes) if p > 1 else 0
    world.counters.record_collective("all_reduce", [(ring, ring)] * p)
    return [total.copy() for _ in range(p)]


def all_gather(world: World, arrays: Sequence[np.ndarray]) -> List[List[np.ndarray]]:
    """AllGather: every rank receives every rank's array."""
    _check(world, arrays)
    p = world.num_ranks
    per_rank = []
    for r in range(p):
        sent = int(np.asarray(arrays[r]).nbytes) * (p - 1)
        recv = sum(
            int(np.asarray(arrays[q]).nbytes) for q in range(p) if q != r
        )
        per_rank.append((sent, recv))
    world.counters.record_collective("all_gather", per_rank)
    return [[np.asarray(a).copy() for a in arrays] for _ in range(p)]


def all_to_all(
    world: World, send: Sequence[Sequence[np.ndarray]]
) -> List[List[np.ndarray]]:
    """AlltoAll: ``send[i][j]`` goes from rank ``i`` to rank ``j``.

    Returns ``recv`` with ``recv[j][i] = send[i][j]``.  This is the
    collective DistGNN uses "for communicating the partial aggregates
    between the root and leaves in the 1-level tree".
    """
    _check(world, send)
    p = world.num_ranks
    for row in send:
        if len(row) != p:
            raise ValueError("send must be a PxP matrix of buffers")
    per_rank = []
    for r in range(p):
        sent = sum(
            int(np.asarray(send[r][q]).nbytes) for q in range(p) if q != r
        )
        recv = sum(
            int(np.asarray(send[q][r]).nbytes) for q in range(p) if q != r
        )
        per_rank.append((sent, recv))
    world.counters.record_collective("all_to_all", per_rank)
    return [[np.asarray(send[i][j]).copy() for i in range(p)] for j in range(p)]


def all_to_allv(
    world: World,
    send_buffers: Sequence[Sequence[np.ndarray]],
) -> List[List[np.ndarray]]:
    """Variable-size AlltoAll (alias of :func:`all_to_all`; the simulated
    buffers already carry their own sizes)."""
    return all_to_all(world, send_buffers)


def broadcast(world: World, array: np.ndarray, root: int = 0) -> List[np.ndarray]:
    """Broadcast from ``root`` to all ranks."""
    p = world.num_ranks
    nbytes = int(np.asarray(array).nbytes)
    per_rank = [
        (nbytes * (p - 1), 0) if r == root else (0, nbytes) for r in range(p)
    ]
    world.counters.record_collective("broadcast", per_rank)
    return [np.asarray(array).copy() for _ in range(p)]


def barrier(world: World) -> None:
    """No-op in lockstep execution; recorded for call accounting."""
    world.counters.record_collective("barrier", [(0, 0)] * world.num_ranks)
