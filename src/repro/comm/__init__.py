"""Simulated distributed runtime.

The paper runs one MPI rank per CPU socket with Intel OneCCL collectives
(AlltoAll for partial aggregates, AllReduce for parameter sync).  We have
no cluster, so this package provides an in-process **simulated MPI world**
that executes the same communication *semantics* deterministically:

- :mod:`repro.comm.communicator` — the :class:`World` of ranks and the
  per-rank :class:`Communicator` handles.
- :mod:`repro.comm.collectives` — AlltoAll(v), AllReduce, AllGather,
  Broadcast over NumPy buffers (lockstep barrier semantics).
- :mod:`repro.comm.async_queue` — epoch-delayed message delivery: a
  message posted at epoch ``e`` becomes visible at epoch ``e + delay``,
  which is exactly the staleness contract of cd-r (Alg. 4).
- :mod:`repro.comm.counters` — per-rank byte/message accounting feeding
  the cost models.
- :mod:`repro.comm.netmodel` — latency/bandwidth network model (HDR-class
  defaults) converting counted bytes into simulated communication time.

Every collective counts the bytes it would move on a real network, so the
benchmark harness can report modelled communication time next to the
algorithmic results.
"""

from repro.comm.async_queue import DelayedQueue, Message
from repro.comm.collectives import (
    all_gather,
    all_reduce,
    all_to_all,
    all_to_allv,
    broadcast,
)
from repro.comm.communicator import Communicator, World
from repro.comm.counters import CommCounters
from repro.comm.netmodel import NetworkModel, HDR_200G

__all__ = [
    "World",
    "Communicator",
    "all_reduce",
    "all_gather",
    "all_to_all",
    "all_to_allv",
    "broadcast",
    "DelayedQueue",
    "Message",
    "CommCounters",
    "NetworkModel",
    "HDR_200G",
]
