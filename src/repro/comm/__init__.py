"""Simulated distributed runtime.

The paper runs one MPI rank per CPU socket with Intel OneCCL collectives
(AlltoAll for partial aggregates, AllReduce for parameter sync).  We have
no cluster, so this package provides an in-process **simulated MPI world**
that executes the same communication *semantics* deterministically:

- :mod:`repro.comm.communicator` — the :class:`World` of ranks and the
  per-rank :class:`Communicator` handles.
- :mod:`repro.comm.collectives` — AlltoAll(v), AllReduce, AllGather,
  Broadcast over NumPy buffers (lockstep barrier semantics).
- :mod:`repro.comm.async_queue` — epoch-delayed message delivery: a
  message posted at epoch ``e`` becomes visible at epoch ``e + delay``,
  which is exactly the staleness contract of cd-r (Alg. 4).
- :mod:`repro.comm.counters` — per-rank byte/message accounting feeding
  the cost models.
- :mod:`repro.comm.netmodel` — latency/bandwidth network model (HDR-class
  defaults) converting counted bytes into simulated communication time.

Every collective counts the bytes it would move on a real network, so the
benchmark harness can report modelled communication time next to the
algorithmic results.

Execution backends
------------------
Two interchangeable backends implement the communicator surface (see
``docs/ARCHITECTURE.md`` § "Execution backends"):

- ``"sim"`` — the in-process lockstep :class:`World` above (deterministic,
  models communication, measures nothing);
- ``"shm"`` — :mod:`repro.comm.shm`: one OS process per rank over
  ``multiprocessing.shared_memory`` mailboxes, for measured wall-clock
  scaling with genuine DRPA overlap.

:data:`BACKENDS` is the registry; trainers resolve a backend name through
:func:`validate_backend` / :func:`create_world`.
"""

from repro.comm.async_queue import DelayedQueue, Message
from repro.comm.collectives import (
    all_gather,
    all_reduce,
    all_to_all,
    all_to_allv,
    broadcast,
)
from repro.comm.communicator import Communicator, World
from repro.comm.counters import CommCounters
from repro.comm.netmodel import NetworkModel, HDR_200G
from repro.comm.shm import ShmCommunicator, ShmWorld, ShmWorldView

#: execution backend registry: name -> world factory ``(num_ranks, **kw)``.
BACKENDS = {
    "sim": World,
    "shm": ShmWorld,
}


def validate_backend(name: str) -> str:
    """Fail fast on an unknown backend name (trainer construction time)."""
    if name not in BACKENDS:
        raise KeyError(
            f"unknown execution backend {name!r}; available: {sorted(BACKENDS)}"
        )
    return name


def create_world(backend: str, num_ranks: int, **kwargs):
    """Instantiate the world of the named backend."""
    return BACKENDS[validate_backend(backend)](num_ranks, **kwargs)


__all__ = [
    "World",
    "Communicator",
    "ShmWorld",
    "ShmCommunicator",
    "ShmWorldView",
    "BACKENDS",
    "validate_backend",
    "create_world",
    "all_reduce",
    "all_gather",
    "all_to_all",
    "all_to_allv",
    "broadcast",
    "DelayedQueue",
    "Message",
    "CommCounters",
    "NetworkModel",
    "HDR_200G",
]
