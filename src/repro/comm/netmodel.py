"""Latency/bandwidth network cost model.

Converts counted communication into modelled wall time with the classic
alpha-beta model: ``time = alpha * messages + bytes / beta``.  Defaults
approximate the paper's fabric (Mellanox HDR, DragonFly topology): 200
Gb/s links with ~1.5 us MPI latency, derated for collective efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.counters import CommCounters


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta cost model of one interconnect."""

    name: str
    latency_s: float  # per-message software+wire latency (alpha)
    bandwidth_Bps: float  # effective per-rank bandwidth (beta)
    #: efficiency derate for dense collectives (AlltoAll on DragonFly
    #: rarely sustains full line rate).
    collective_efficiency: float = 0.7

    def p2p_time(self, nbytes: float, messages: int = 1) -> float:
        return self.latency_s * messages + nbytes / self.bandwidth_Bps

    def collective_time(self, max_rank_bytes: float, messages: int = 1) -> float:
        """Time of a collective dominated by its busiest rank."""
        eff = self.bandwidth_Bps * self.collective_efficiency
        return self.latency_s * messages + max_rank_bytes / eff

    def epoch_comm_time(self, counters: CommCounters) -> float:
        """Modelled time to move one epoch's counted traffic.

        Uses the busiest rank (links are parallel across ranks) plus one
        latency per recorded message.
        """
        if counters.num_ranks <= 1:
            return 0.0
        msgs = max(counters.messages_sent) if counters.messages_sent else 0
        coll = sum(counters.collective_calls.values())
        return self.collective_time(counters.max_rank_bytes, messages=msgs + coll)


#: Paper cluster fabric: Mellanox HDR (200 Gb/s), DragonFly.
HDR_200G = NetworkModel(
    name="mellanox-hdr-200g",
    latency_s=1.5e-6,
    bandwidth_Bps=200e9 / 8,
    collective_efficiency=0.7,
)

#: Commodity 10 GbE for sensitivity studies.
ETH_10G = NetworkModel(
    name="10gbe",
    latency_s=20e-6,
    bandwidth_Bps=10e9 / 8,
    collective_efficiency=0.6,
)
