"""Simulated MPI world.

A :class:`World` owns ``num_ranks`` mailbox sets, the byte counters, and
the delayed-delivery queue; each rank gets a :class:`Communicator` handle
(the moral equivalent of its ``MPI_COMM_WORLD``).  All ranks execute in
one process, driven in lockstep by the distributed trainer, so collective
calls are implemented as functions over the world state rather than
blocking rendezvous — the *ordering* guarantees are identical to the MPI
program the paper runs (collectives act as epoch barriers, async messages
deliver ``delay`` epochs later).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.comm.async_queue import DelayedQueue, Message
from repro.comm.counters import CommCounters
from repro.obs.registry import register_comm_world


class World:
    """All-rank shared state of the simulated cluster."""

    def __init__(self, num_ranks: int):
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self.num_ranks = num_ranks
        self.counters = CommCounters(num_ranks)
        self.queue = DelayedQueue(num_ranks)
        self._epoch = 0
        # weakref registration: per-rank byte counters show up in every
        # telemetry registry / GET /metrics?format=prom for as long as
        # this world is alive
        self.obs_name = register_comm_world(self, kind="sim")

    # -- epoch clock ---------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Current epoch of the lockstep clock (drives delayed delivery)."""
        return self._epoch

    def advance_epoch(self) -> int:
        """Advance the world clock; called once per training epoch."""
        self._epoch += 1
        return self._epoch

    def reset_epoch(self) -> None:
        self._epoch = 0
        self.queue.clear()

    # -- rank handles ----------------------------------------------------------

    def communicator(self, rank: int) -> "Communicator":
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.num_ranks})")
        return Communicator(world=self, rank=rank)

    def communicators(self) -> List["Communicator"]:
        return [self.communicator(r) for r in range(self.num_ranks)]


@dataclass
class Communicator:
    """Per-rank handle (rank id + world reference)."""

    world: World
    rank: int

    @property
    def size(self) -> int:
        return self.world.num_ranks

    # -- point-to-point (async, epoch-delayed) -------------------------------

    def isend(
        self,
        dst: int,
        payload: np.ndarray,
        tag: Any = None,
        delay: int = 0,
    ) -> None:
        """Post an asynchronous message.

        The message becomes receivable at world epoch ``posted_epoch +
        delay``.  ``delay=0`` models a same-epoch exchange (cd-0's wait);
        ``delay=r`` models cd-r's deferred processing.
        """
        nbytes = int(np.asarray(payload).nbytes)
        self.world.counters.record_p2p(self.rank, dst, nbytes)
        self.world.queue.post(
            Message(
                src=self.rank,
                dst=dst,
                tag=tag,
                payload=payload,
                post_epoch=self.world.epoch,
                deliver_epoch=self.world.epoch + delay,
            )
        )

    def recv_ready(self, tag: Any = None) -> List[Message]:
        """Drain all messages for this rank deliverable at the current epoch."""
        return self.world.queue.drain(self.rank, self.world.epoch, tag=tag)

    def pending_count(self, tag: Any = None) -> int:
        """Messages posted to this rank but not yet deliverable."""
        return self.world.queue.pending(self.rank, self.world.epoch, tag=tag)
