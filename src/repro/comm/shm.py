"""Multi-process shared-memory execution backend.

The simulated :class:`~repro.comm.communicator.World` executes every rank
in one Python process, driven in lockstep; this module provides the same
``Communicator`` surface over **real** OS processes so each Libra
partition trains on its own core with genuine DRPA communication/
computation overlap:

- :class:`ShmWorld` — parent-side controller: owns the per-rank mailboxes,
  the shared byte counters, and the epoch barrier; ``run()`` forks one
  worker process per rank and collects their return values.
- :class:`ShmCommunicator` — the per-process rank handle.  Implements the
  simulator's surface (``isend`` / ``recv_ready`` / ``pending_count``)
  plus the blocking collectives the SPMD trainer needs (``all_reduce``,
  ``all_to_allv``, ``broadcast``, ``barrier``).
- :class:`ShmWorldView` — a ``World``-shaped facade over one communicator
  so rank-local code written against the simulator (the
  :class:`~repro.core.drpa.DRPAExchanger`) runs unchanged inside a worker.

Transport
---------
Message *metadata* (src, tag, epochs) travels through per-rank
``multiprocessing`` queues; *payloads* at or above
:data:`SHM_PAYLOAD_THRESHOLD` travel through anonymous
``multiprocessing.shared_memory`` segments (one per message, created by
the sender, unlinked by the receiver), so feature-row exchanges never
funnel through a pickle pipe.  Tiny payloads ride inline in the metadata.

Determinism contract
--------------------
Delivery visibility uses a posted-message counter per destination: a
sender increments the counter (under the world lock) *before* enqueueing,
and a receiver drains its queue until it has caught up with the counter.
Combined with the barrier-based epoch boundaries of the SPMD trainer this
makes the *set* of deliverable messages at any drain identical to the
lockstep simulator's, and :meth:`ShmCommunicator.recv_ready` sorts ripe
messages by ``(post_epoch, src, sender_seq)`` — the exact FIFO order the
lockstep driver produces — so floating-point reductions over arrivals are
bit-identical across backends.

Failure model
-------------
Every blocking wait (barrier, queue get) carries the world timeout; a
deadlocked exchange raises instead of hanging, and :meth:`ShmWorld.run`
converts any worker failure into a parent-side :class:`RuntimeError`
after terminating the survivors.
"""

from __future__ import annotations

import queue as _queue
import threading
import traceback
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.async_queue import Message
from repro.comm.counters import CommCounters
from repro.obs.registry import register_comm_world

#: payloads at or above this many bytes travel via ``shared_memory``
#: segments; smaller ones ride inline through the metadata queue.
SHM_PAYLOAD_THRESHOLD = 1 << 14

#: fixed accounting slots for collective-call counts (mirrors the names
#: the simulator's :mod:`repro.comm.collectives` records).
_COLLECTIVE_NAMES = ("all_reduce", "all_gather", "all_to_all", "broadcast", "barrier")


def _require_fork_context():
    import multiprocessing as mp

    if "fork" not in mp.get_all_start_methods():
        raise RuntimeError(
            "the shm backend needs the 'fork' start method (POSIX); "
            "use backend='sim' on this platform"
        )
    return mp.get_context("fork")


# -- payload transport ---------------------------------------------------------


def _pack_payload(payload: np.ndarray) -> Tuple:
    """Serialize an array for the wire: shared-memory segment or inline."""
    arr = np.ascontiguousarray(payload)
    if arr.nbytes >= SHM_PAYLOAD_THRESHOLD:
        from multiprocessing import resource_tracker, shared_memory

        seg = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
        np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)[...] = arr
        name = seg.name
        seg.close()
        # Ownership moves to the receiver (it unlinks after copying out);
        # unregister here so the sender's resource tracker doesn't try to
        # clean up a segment another process already freed.
        resource_tracker.unregister(seg._name, "shared_memory")
        return ("shm", name, arr.dtype.str, arr.shape)
    return ("inline", arr.tobytes(), arr.dtype.str, arr.shape)


def _unpack_payload(ref: Tuple) -> np.ndarray:
    kind, data, dtype, shape = ref
    if kind == "shm":
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(name=data)
        try:
            nbytes = int(np.dtype(dtype).itemsize * int(np.prod(shape, dtype=np.int64)))
            arr = np.frombuffer(seg.buf[:nbytes], dtype=dtype).reshape(shape).copy()
        finally:
            seg.close()
            seg.unlink()
        return arr
    return np.frombuffer(data, dtype=dtype).reshape(shape).copy()


# -- shared world state --------------------------------------------------------


class _SharedState:
    """All IPC primitives, created in the parent and inherited via fork."""

    def __init__(self, ctx, num_ranks: int):
        self.num_ranks = num_ranks
        self.mail = [ctx.Queue() for _ in range(num_ranks)]
        self.coll = [ctx.Queue() for _ in range(num_ranks)]
        self.results = ctx.Queue()
        self.barrier = ctx.Barrier(num_ranks)
        self.lock = ctx.Lock()
        # guarded by ``lock``:
        self.posted = ctx.Array("q", num_ranks, lock=False)
        self.bytes_sent = ctx.Array("q", num_ranks, lock=False)
        self.bytes_received = ctx.Array("q", num_ranks, lock=False)
        self.messages_sent = ctx.Array("q", num_ranks, lock=False)
        self.inflight_bytes = ctx.Array("q", num_ranks, lock=False)
        self.collective_calls = ctx.Array("q", len(_COLLECTIVE_NAMES), lock=False)

    def read_counters(self) -> CommCounters:
        """Consistent :class:`CommCounters` view of the shared arrays."""
        c = CommCounters(self.num_ranks)
        with self.lock:
            c.bytes_sent = list(self.bytes_sent)
            c.bytes_received = list(self.bytes_received)
            c.messages_sent = list(self.messages_sent)
            c.collective_calls = {
                name: int(count)
                for name, count in zip(_COLLECTIVE_NAMES, self.collective_calls)
                if count
            }
        return c

    def read_inflight_bytes(self) -> int:
        with self.lock:
            return int(sum(self.inflight_bytes))


class ShmWorld:
    """Controller of one multi-process world (parent-side handle).

    Mirrors the constructor shape of the simulated ``World`` (rank count
    first) and adds ``run()`` to execute an SPMD function across real
    processes.  Counters are shared memory, so the parent's
    :attr:`counters` reflects all ranks' traffic at any quiescent point.
    """

    def __init__(self, num_ranks: int, timeout: float = 120.0):
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.num_ranks = num_ranks
        self.timeout = timeout
        self._ctx = _require_fork_context()
        self._state = _SharedState(self._ctx, num_ranks)
        # weakref registration: the parent-side counter view is exported
        # by every telemetry registry while this world is alive
        self.obs_name = register_comm_world(self, kind="shm")

    # -- parent-side views ------------------------------------------------------

    @property
    def counters(self) -> CommCounters:
        return self._state.read_counters()

    def in_flight_bytes(self) -> int:
        """Posted-but-undelivered payload bytes across all mailboxes."""
        return self._state.read_inflight_bytes()

    def communicator(self, rank: int) -> "ShmCommunicator":
        """Rank handle (to be used *inside* that rank's process)."""
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.num_ranks})")
        return ShmCommunicator(self._state, rank, self.timeout)

    # -- SPMD execution ---------------------------------------------------------

    def run(self, fn: Callable, *args) -> List[Any]:
        """Fork one process per rank running ``fn(comm, *args)``.

        Returns the per-rank return values in rank order.  Any worker
        exception (including a barrier timeout from a deadlocked
        exchange) terminates the remaining workers and re-raises as a
        :class:`RuntimeError` carrying the worker traceback.

        The world timeout bounds individual blocking waits, never the
        total run: a healthy long fit runs to completion, because a
        stuck *worker* raises internally (its own barrier/mailbox waits
        carry the timeout) and reports through the result queue.  The
        parent polls only to notice workers that died without reporting
        (hard kill, OOM).
        """
        procs = [
            self._ctx.Process(
                target=_worker_entry,
                args=(self._state, rank, self.timeout, fn, args),
                daemon=True,
            )
            for rank in range(self.num_ranks)
        ]
        for p in procs:
            p.start()
        results: List[Any] = [None] * self.num_ranks
        reported = [False] * self.num_ranks
        failures: List[str] = []
        try:
            while not all(reported) and not failures:
                try:
                    rank, ok, value = self._state.results.get(timeout=1.0)
                except _queue.Empty:
                    dead = [
                        r
                        for r in range(self.num_ranks)
                        if not reported[r] and not procs[r].is_alive()
                    ]
                    if dead:
                        # Give an in-transit result one last chance to land.
                        try:
                            rank, ok, value = self._state.results.get(
                                timeout=1.0
                            )
                        except _queue.Empty:
                            failures.append(
                                f"rank(s) {dead} died without reporting a "
                                "result (killed or crashed hard)"
                            )
                            continue
                    else:
                        continue
                reported[rank] = True
                if ok:
                    results[rank] = value
                else:
                    failures.append(f"rank {rank} failed:\n{value}")
        finally:
            for p in procs:
                p.join(timeout=self.timeout if not failures else 1.0)
            for p in procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=5.0)
        if failures:
            raise RuntimeError("shm backend run failed: " + "; ".join(failures))
        return results


def _worker_entry(state: _SharedState, rank: int, timeout: float, fn, args):
    comm = ShmCommunicator(state, rank, timeout)
    try:
        value = fn(comm, *args)
    # The parent raises RuntimeError naming every failed rank.
    # audit[broad-except]: traceback shipped to the parent via the result queue
    except BaseException:
        state.results.put((rank, False, traceback.format_exc()))
    else:
        state.results.put((rank, True, value))


# -- the per-rank communicator -------------------------------------------------


class ShmCommunicator:
    """One rank's handle inside its own process.

    Implements the simulator ``Communicator`` surface (``isend`` /
    ``recv_ready`` / ``pending_count`` with epoch-delayed visibility)
    plus blocking collectives.  The epoch clock is rank-local; the SPMD
    trainer advances it at barrier-aligned epoch boundaries so all ranks
    agree on message ripeness.
    """

    def __init__(self, state: _SharedState, rank: int, timeout: float):
        self._state = state
        self.rank = rank
        self.timeout = timeout
        self._epoch = 0
        self._send_seq = 0  # FIFO tiebreak for deterministic drain order
        self._received = 0  # contiguous mailbox watermark (indices pumped)
        self._out_of_order: set = set()  # pumped indices above the watermark
        self._store: List[Tuple[int, Message]] = []  # (sender_seq, msg)
        self._coll_seq = 0  # SPMD collective call counter
        self._coll_backlog: List[Tuple] = []

    # -- epoch clock ------------------------------------------------------------

    @property
    def size(self) -> int:
        return self._state.num_ranks

    @property
    def epoch(self) -> int:
        return self._epoch

    def advance_epoch(self) -> int:
        self._epoch += 1
        return self._epoch

    # -- synchronization --------------------------------------------------------

    def barrier(self) -> None:
        """Block until every rank arrives; raises on timeout (deadlock)."""
        try:
            self._state.barrier.wait(self.timeout)
        except threading.BrokenBarrierError:
            raise RuntimeError(
                f"rank {self.rank}: barrier broken or timed out after "
                f"{self.timeout:.0f}s — another rank died or deadlocked"
            ) from None

    # -- point-to-point (async, epoch-delayed) ----------------------------------

    def isend(
        self,
        dst: int,
        payload: np.ndarray,
        tag: Any = None,
        delay: int = 0,
    ) -> None:
        """Post an asynchronous message deliverable at ``epoch + delay``.

        Identical semantics (and byte accounting) to the simulator's
        ``Communicator.isend``; the payload is snapshotted at post time,
        so the sender may keep mutating its buffers.
        """
        if not 0 <= dst < self.size:
            raise ValueError(f"destination rank {dst} out of range")
        arr = np.ascontiguousarray(payload)
        nbytes = int(arr.nbytes)
        st = self._state
        seq = self._send_seq
        self._send_seq += 1
        with st.lock:
            if dst != self.rank:  # rank-local copies are free, like the sim
                st.bytes_sent[self.rank] += nbytes
                st.bytes_received[dst] += nbytes
                st.messages_sent[self.rank] += 1
            # Dense per-destination mailbox index.  Queue arrival order is
            # NOT posting order (each sender's feeder thread flushes
            # independently), so receivers track delivery by index, not
            # by count — see :meth:`_pump`.
            index = int(st.posted[dst])
            st.posted[dst] += 1
            st.inflight_bytes[dst] += nbytes
        ref = _pack_payload(arr)
        st.mail[dst].put(
            (index, self.rank, seq, tag, self._epoch, self._epoch + delay, ref)
        )

    def _pump(self) -> None:
        """Catch the local store up with the posted-message counter.

        Every message whose ``posted`` increment happened before this
        call carries a mailbox index below ``target``; the pump blocks
        until the contiguous index watermark reaches ``target``, so all
        of *those* messages are in the local store afterwards — even
        though queue arrival order across senders is arbitrary (each
        sender's feeder thread flushes independently).  Later-indexed
        messages that arrive early are simply stored; they count toward
        a future target.  This is what makes barrier-separated phases
        see exactly the lockstep simulator's message sets.
        """
        st = self._state
        with st.lock:
            target = int(st.posted[self.rank])
        while self._received < target:
            try:
                index, src, seq, tag, post_epoch, deliver_epoch, ref = st.mail[
                    self.rank
                ].get(timeout=self.timeout)
            except _queue.Empty:
                raise RuntimeError(
                    f"rank {self.rank}: mailbox pump timed out after "
                    f"{self.timeout:.0f}s ({self._received}/{target} messages)"
                ) from None
            msg = Message(
                src=src,
                dst=self.rank,
                tag=tag,
                payload=_unpack_payload(ref),
                post_epoch=post_epoch,
                deliver_epoch=deliver_epoch,
            )
            self._store.append((seq, msg))
            self._out_of_order.add(index)
            while self._received in self._out_of_order:
                self._out_of_order.remove(self._received)
                self._received += 1

    def recv_ready(self, tag: Any = None) -> List[Message]:
        """Drain messages deliverable at the current epoch.

        Returns them in ``(post_epoch, src, sender_seq)`` order — the
        FIFO order the lockstep simulator produces — so reductions over
        arrivals are deterministic and backend-independent.
        """
        self._pump()
        ready, keep = [], []
        for seq, msg in self._store:
            if msg.deliver_epoch <= self._epoch and (tag is None or msg.tag == tag):
                ready.append((seq, msg))
            else:
                keep.append((seq, msg))
        self._store = keep
        ready.sort(key=lambda item: (item[1].post_epoch, item[1].src, item[0]))
        out = [msg for _, msg in ready]
        if out:
            delivered = sum(int(m.payload.nbytes) for m in out)
            with self._state.lock:
                self._state.inflight_bytes[self.rank] -= delivered
        return out

    def pending_count(self, tag: Any = None) -> int:
        """Messages posted to this rank but not yet deliverable."""
        self._pump()
        return sum(
            1
            for _, msg in self._store
            if msg.deliver_epoch > self._epoch
            and (tag is None or msg.tag == tag)
        )

    # -- collectives ------------------------------------------------------------
    #
    # SPMD discipline: every rank calls the same collectives in the same
    # program order.  Each call gets a world-order sequence number so a
    # fast rank's next collective can never be confused with a slow
    # rank's current one; mismatched arrivals are parked in a backlog.

    def _coll_put(self, dst: int, kind: str, seq: int, body) -> None:
        self._state.coll[dst].put((kind, seq, self.rank, body))

    def _coll_get(self, kind: str, seq: int) -> Tuple[int, Any]:
        for i, (k, s, src, body) in enumerate(self._coll_backlog):
            if k == kind and s == seq:
                del self._coll_backlog[i]
                return src, body
        while True:
            try:
                k, s, src, body = self._state.coll[self.rank].get(
                    timeout=self.timeout
                )
            except _queue.Empty:
                raise RuntimeError(
                    f"rank {self.rank}: collective {kind}#{seq} timed out "
                    f"after {self.timeout:.0f}s"
                ) from None
            if k == kind and s == seq:
                return src, body
            self._coll_backlog.append((k, s, src, body))

    def _record_collective(self, name: str, sent: int, recv: int, count_call: bool):
        st = self._state
        idx = _COLLECTIVE_NAMES.index(name)
        with st.lock:
            st.bytes_sent[self.rank] += sent
            st.bytes_received[self.rank] += recv
            if count_call:
                st.collective_calls[idx] += 1

    def all_reduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        """Blocking AllReduce; every rank returns the identical reduction.

        Rank 0 gathers the contributions, reduces them **in rank order**
        with the same NumPy reduction the simulator uses, and broadcasts
        the result — so the returned array is bit-identical to the
        simulated ``all_reduce`` on the same inputs.  Byte accounting
        records the simulator's ring volume per rank.
        """
        arr = np.asarray(array)
        p = self.size
        seq = self._coll_seq
        self._coll_seq += 1
        if p == 1:
            total = _reduce_in_rank_order([arr], op)
        elif self.rank == 0:
            parts: List[Optional[np.ndarray]] = [None] * p
            parts[0] = arr
            for _ in range(p - 1):
                src, ref = self._coll_get("ar", seq)
                parts[src] = _unpack_payload(ref)
            for part in parts:
                if part.shape != arr.shape:
                    raise ValueError("all_reduce requires identical shapes")
            total = _reduce_in_rank_order(parts, op)
            for q in range(1, p):
                self._coll_put(q, "ar", seq, _pack_payload(total))
        else:
            self._coll_put(0, "ar", seq, _pack_payload(arr))
            _, ref = self._coll_get("ar", seq)
            total = _unpack_payload(ref)
        ring = int(2 * (p - 1) / p * arr.nbytes) if p > 1 else 0
        self._record_collective("all_reduce", ring, ring, count_call=self.rank == 0)
        return np.array(total, copy=True)

    def all_to_allv(self, send_rows: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Variable-size AlltoAll: ``send_rows[q]`` goes to rank ``q``.

        Returns ``recv`` with ``recv[q]`` = the buffer rank ``q`` sent to
        this rank (own slot copied locally).  Byte accounting matches the
        simulator's ``all_to_allv`` (off-diagonal volume only).
        """
        p = self.size
        if len(send_rows) != p:
            raise ValueError(f"need one send buffer per rank ({p})")
        seq = self._coll_seq
        self._coll_seq += 1
        sent = 0
        for q in range(p):
            if q == self.rank:
                continue
            buf = np.asarray(send_rows[q])
            sent += int(buf.nbytes)
            self._coll_put(q, "a2a", seq, _pack_payload(buf))
        recv: List[Optional[np.ndarray]] = [None] * p
        recv[self.rank] = np.array(send_rows[self.rank], copy=True)
        received = 0
        for _ in range(p - 1):
            src, ref = self._coll_get("a2a", seq)
            recv[src] = _unpack_payload(ref)
            received += int(recv[src].nbytes)
        self._record_collective(
            "all_to_all", sent, received, count_call=self.rank == 0
        )
        return recv

    def broadcast(self, array: Optional[np.ndarray], root: int = 0) -> np.ndarray:
        """Broadcast ``array`` from ``root``; other ranks may pass None."""
        p = self.size
        seq = self._coll_seq
        self._coll_seq += 1
        if self.rank == root:
            arr = np.asarray(array)
            for q in range(p):
                if q != root:
                    self._coll_put(q, "bc", seq, _pack_payload(arr))
            out = np.array(arr, copy=True)
            self._record_collective(
                "broadcast", int(arr.nbytes) * (p - 1), 0, count_call=True
            )
        else:
            _, ref = self._coll_get("bc", seq)
            out = _unpack_payload(ref)
            self._record_collective(
                "broadcast", 0, int(out.nbytes), count_call=False
            )
        return out

    # -- instrumentation --------------------------------------------------------

    def counters_snapshot(self) -> CommCounters:
        """World-wide counter snapshot (call at a barrier-quiesced point)."""
        return self._state.read_counters()

    def in_flight_bytes(self) -> int:
        """World-wide posted-but-undelivered payload bytes."""
        return self._state.read_inflight_bytes()


def _reduce_in_rank_order(parts: Sequence[np.ndarray], op: str) -> np.ndarray:
    """The exact reductions of the simulator's ``all_reduce``."""
    arrays = [np.asarray(a) for a in parts]
    if op == "sum":
        return np.sum(arrays, axis=0)
    if op == "mean":
        return np.mean(arrays, axis=0)
    if op == "max":
        return np.max(arrays, axis=0)
    if op == "min":
        return np.min(arrays, axis=0)
    raise ValueError(f"unsupported all_reduce op {op!r}")


# -- World facade for rank-local code ------------------------------------------


class ShmWorldView:
    """A ``World``-shaped view over one rank's communicator.

    Code written against the simulator accesses ``world.num_ranks``,
    ``world.epoch`` and ``world.communicators()[rank]``; inside an SPMD
    worker only the own-rank slot is real — touching a foreign rank's
    communicator is a programming error and raises immediately.
    """

    def __init__(self, comm: ShmCommunicator):
        self.comm = comm
        self.num_ranks = comm.size

    @property
    def epoch(self) -> int:
        return self.comm.epoch

    def advance_epoch(self) -> int:
        return self.comm.advance_epoch()

    def communicator(self, rank: int):
        return self.communicators()[rank]

    def communicators(self) -> List:
        return [
            self.comm if r == self.comm.rank else _ForeignRankGuard(r)
            for r in range(self.num_ranks)
        ]


class _ForeignRankGuard:
    """Placeholder for a rank living in another process."""

    __slots__ = ("rank",)

    def __init__(self, rank: int):
        self.rank = rank

    def __getattr__(self, name):
        raise RuntimeError(
            f"rank {object.__getattribute__(self, 'rank')} lives in another "
            "process; SPMD code must only touch its own communicator"
        )
