"""Epoch-delayed message delivery.

cd-r overlaps communication with computation *across epochs*: a partial
aggregate sent in epoch ``e`` is consumed in epoch ``e + r`` (Alg. 4,
guards ``e >= r`` and ``e >= 2r``).  The queue realizes that contract:
messages carry a ``deliver_epoch`` and stay invisible until the world
clock reaches it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np


@dataclass
class Message:
    """One in-flight message."""

    src: int
    dst: int
    tag: Any
    payload: np.ndarray
    post_epoch: int
    deliver_epoch: int


class DelayedQueue:
    """Per-destination mailboxes with epoch-gated visibility."""

    def __init__(self, num_ranks: int):
        self.num_ranks = num_ranks
        self._boxes: List[List[Message]] = [[] for _ in range(num_ranks)]

    def post(self, msg: Message) -> None:
        if not 0 <= msg.dst < self.num_ranks:
            raise ValueError(f"destination rank {msg.dst} out of range")
        self._boxes[msg.dst].append(msg)

    def drain(self, rank: int, epoch: int, tag: Any = None) -> List[Message]:
        """Remove and return messages deliverable at ``epoch`` (FIFO order)."""
        box = self._boxes[rank]
        ready, later = [], []
        for msg in box:
            if msg.deliver_epoch <= epoch and (tag is None or msg.tag == tag):
                ready.append(msg)
            else:
                later.append(msg)
        self._boxes[rank] = later
        return ready

    def pending(self, rank: int, epoch: int, tag: Any = None) -> int:
        return sum(
            1
            for msg in self._boxes[rank]
            if msg.deliver_epoch > epoch and (tag is None or msg.tag == tag)
        )

    def total_in_flight(self) -> int:
        return sum(len(b) for b in self._boxes)

    def in_flight_bytes(self) -> int:
        """Total buffered payload bytes — the cd-r memory overhead the
        paper's Table 6 charges for communication buffering."""
        return sum(
            int(np.asarray(m.payload).nbytes) for b in self._boxes for m in b
        )

    def clear(self) -> None:
        self._boxes = [[] for _ in range(self.num_ranks)]
