"""The three distributed algorithms (paper Section 5.3).

=========  =============================================================
``0c``     No communication at all.  Split vertices aggregate only their
           local partial neighbourhood.  Fastest; the scaling roofline.
``cd-0``   Synchronous exchange every epoch: after local aggregation,
           split-vertex partials are tree-reduced and redistributed, so
           every vertex sees its complete neighbourhood (accuracy parity
           with single socket).  Slowest; the scaling lower bound.
``cd-r``   Communication *avoidance*: the exchange of ``cd-0`` is split
           into ``r`` bins and pipelined across epochs; aggregates used
           at epoch ``e`` contain remote partials from epoch ``e - r``
           (and the round trip completes at ``e - 2r`` for leaves).
=========  =============================================================

An :class:`AlgorithmSpec` fully configures the DRPA exchanger and the
trainer's gradient handling:

- cd-0 also tree-sums the aggregate-output *gradients* (the exact adjoint
  of the forward sync — every clone ends up applying the total gradient);
- cd-r and 0c keep gradients local, mirroring their forward freshness
  contract (stale/absent remote partials are treated as constants).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class AlgorithmSpec:
    """Communication regime of one distributed run."""

    name: str
    #: exchange partial aggregates at all?
    communicate: bool
    #: epochs between posting and consuming a partial aggregate.
    delay: int
    #: tree-sum aggregate gradients in backward (exact adjoint; cd-0 only).
    sync_gradients: bool

    @property
    def num_bins(self) -> int:
        """cd-r deals trees into ``r`` bins (Alg. 4 lines 3–6)."""
        return max(self.delay, 1)

    @property
    def is_synchronous(self) -> bool:
        return self.communicate and self.delay == 0

    def display_name(self) -> str:
        if not self.communicate:
            return "0c"
        return f"cd-{self.delay}"


def get_algorithm(name: str, delay: int = 5) -> AlgorithmSpec:
    """Build an algorithm spec from a paper-style name.

    Accepts ``"0c"``, ``"cd-0"``, ``"cd-r"`` (uses ``delay``), or
    ``"cd-<k>"`` for an explicit delay.
    """
    key = name.lower().replace("_", "-")
    if key == "0c":
        return AlgorithmSpec("0c", communicate=False, delay=0, sync_gradients=False)
    if key == "cd-0":
        return AlgorithmSpec("cd-0", communicate=True, delay=0, sync_gradients=True)
    if key == "cd-r":
        key = f"cd-{delay}"
    if key.startswith("cd-"):
        r = int(key[3:])
        if r < 0:
            raise ValueError("delay must be >= 0")
        if r == 0:
            return AlgorithmSpec("cd-0", communicate=True, delay=0, sync_gradients=True)
        return AlgorithmSpec(
            f"cd-{r}", communicate=True, delay=r, sync_gradients=False
        )
    raise ValueError(f"unknown algorithm {name!r}; use 0c, cd-0 or cd-<r>")


ALGORITHMS: Dict[str, AlgorithmSpec] = {
    "0c": get_algorithm("0c"),
    "cd-0": get_algorithm("cd-0"),
    "cd-5": get_algorithm("cd-5"),
}
