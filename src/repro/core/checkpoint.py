"""Model/optimizer checkpointing.

Full-batch training at paper scale runs 200–300 epochs (Table 5); a
production run needs restartability.  Checkpoints store model weights,
optimizer slots (Adam moments / SGD velocity), and the epoch cursor in
one compressed ``.npz``.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.module import Module
from repro.nn.optim import Adam, Optimizer, SGD

_FORMAT_VERSION = 1


def save_checkpoint(
    path: str,
    model: Module,
    optimizer: Optional[Optimizer] = None,
    epoch: int = 0,
    extra: Optional[Dict[str, np.ndarray]] = None,
) -> None:
    """Persist training state to ``path`` (``.npz``)."""
    payload: Dict[str, np.ndarray] = {
        "format_version": np.asarray(_FORMAT_VERSION),
        "epoch": np.asarray(epoch),
    }
    for name, arr in model.state_dict().items():
        payload[f"model/{name}"] = arr
    if optimizer is not None:
        for key, arr in _optimizer_state(optimizer).items():
            payload[f"optim/{key}"] = arr
    for key, arr in (extra or {}).items():
        payload[f"extra/{key}"] = np.asarray(arr)
    np.savez_compressed(path, **payload)


def load_checkpoint(
    path: str,
    model: Module,
    optimizer: Optional[Optimizer] = None,
) -> Tuple[int, Dict[str, np.ndarray]]:
    """Restore training state; returns ``(epoch, extra_arrays)``."""
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        state = {
            k[len("model/") :]: data[k]
            for k in data.files
            if k.startswith("model/")
        }
        model.load_state_dict(state)
        if optimizer is not None:
            opt_state = {
                k[len("optim/") :]: data[k]
                for k in data.files
                if k.startswith("optim/")
            }
            _restore_optimizer(optimizer, opt_state)
        extra = {
            k[len("extra/") :]: data[k]
            for k in data.files
            if k.startswith("extra/")
        }
        return int(data["epoch"]), extra


def peek_checkpoint(path: str) -> Tuple[int, Dict[str, np.ndarray]]:
    """Read ``(epoch, extra_arrays)`` without needing a model instance.

    The serving tier uses this to recover the architecture metadata
    (:func:`training_meta`) embedded by ``repro train --checkpoint``
    *before* it can build the model that :func:`load_checkpoint` fills.
    """
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        extra = {
            k[len("extra/") :]: data[k]
            for k in data.files
            if k.startswith("extra/")
        }
        return int(data["epoch"]), extra


#: ``extra`` keys that describe the model architecture.
_META_KEYS = ("model", "num_layers", "hidden_features", "kernel")


def training_meta(config) -> Dict[str, np.ndarray]:
    """Architecture metadata to embed as checkpoint ``extra`` so a
    checkpoint is self-describing (``InferenceEngine.from_checkpoint``
    and ``repro predict`` rebuild the model without the TrainConfig)."""
    return {key: np.asarray(getattr(config, key)) for key in _META_KEYS}


def config_from_meta(extra: Dict[str, np.ndarray], base):
    """Overlay checkpoint architecture metadata onto a base TrainConfig.

    Keys absent from ``extra`` (older checkpoints, hand-written ones)
    keep the base config's values.
    """
    from repro.core.config import TrainConfig

    cfg = TrainConfig(**vars(base))
    for key in _META_KEYS:
        if key in extra:
            setattr(cfg, key, type(getattr(cfg, key))(extra[key].item()))
    return cfg


def _optimizer_state(opt: Optimizer) -> Dict[str, np.ndarray]:
    """Serialize optimizer slots positionally (parameter order is the
    module-traversal order, which is deterministic)."""
    state: Dict[str, np.ndarray] = {}
    if isinstance(opt, Adam):
        state["t"] = np.asarray(opt._t)
        for i, p in enumerate(opt.params):
            if id(p) in opt._m:
                state[f"m/{i}"] = opt._m[id(p)]
                state[f"v/{i}"] = opt._v[id(p)]
    elif isinstance(opt, SGD):
        for i, p in enumerate(opt.params):
            if id(p) in opt._velocity:
                state[f"vel/{i}"] = opt._velocity[id(p)]
    return state


def _restore_optimizer(opt: Optimizer, state: Dict[str, np.ndarray]) -> None:
    if isinstance(opt, Adam):
        opt._t = int(state.get("t", 0))
        for i, p in enumerate(opt.params):
            if f"m/{i}" in state:
                opt._m[id(p)] = state[f"m/{i}"].copy()
                opt._v[id(p)] = state[f"v/{i}"].copy()
    elif isinstance(opt, SGD):
        for i, p in enumerate(opt.params):
            if f"vel/{i}" in state:
                opt._velocity[id(p)] = state[f"vel/{i}"].copy()
