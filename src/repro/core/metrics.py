"""Training metrics and timers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Stopwatch:
    """Accumulating wall-clock timer with named phases."""

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}

    def time(self, phase: str):
        return _PhaseContext(self, phase)

    def add(self, phase: str, seconds: float) -> None:
        self.totals[phase] = self.totals.get(phase, 0.0) + seconds

    def get(self, phase: str) -> float:
        return self.totals.get(phase, 0.0)

    def reset(self) -> None:
        self.totals.clear()


class _PhaseContext:
    __slots__ = ("sw", "phase", "_t0")

    def __init__(self, sw: Stopwatch, phase: str):
        self.sw = sw
        self.phase = phase

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.sw.add(self.phase, time.perf_counter() - self._t0)
        return False


@dataclass
class EpochStats:
    """One epoch's measurements."""

    epoch: int
    loss: float
    total_time_s: float
    ap_time_s: float = 0.0
    local_agg_time_s: float = 0.0
    remote_agg_time_s: float = 0.0
    comm_bytes: int = 0
    train_acc: Optional[float] = None
    val_acc: Optional[float] = None
    test_acc: Optional[float] = None


@dataclass
class TrainResult:
    """Outcome of one training run."""

    epochs: List[EpochStats] = field(default_factory=list)
    final_test_acc: Optional[float] = None
    best_val_acc: Optional[float] = None

    @property
    def avg_epoch_time_s(self) -> float:
        """Average per-epoch time, skipping the first (warm-up) epoch —
        the paper averages epochs 1-10 for 0c/cd-0."""
        times = [e.total_time_s for e in self.epochs[1:]] or [
            e.total_time_s for e in self.epochs
        ]
        return sum(times) / len(times) if times else 0.0

    @property
    def avg_ap_time_s(self) -> float:
        times = [e.ap_time_s for e in self.epochs[1:]] or [
            e.ap_time_s for e in self.epochs
        ]
        return sum(times) / len(times) if times else 0.0

    def avg_time_between(self, start: int, stop: int) -> float:
        """Average epoch time over epoch index range [start, stop) — the
        paper averages epochs 10-20 for cd-r to skip the pipeline fill."""
        sel = [e.total_time_s for e in self.epochs if start <= e.epoch < stop]
        return sum(sel) / len(sel) if sel else self.avg_epoch_time_s

    @property
    def final_loss(self) -> float:
        return self.epochs[-1].loss if self.epochs else float("nan")

    def loss_curve(self) -> List[float]:
        return [e.loss for e in self.epochs]
