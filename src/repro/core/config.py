"""Training configuration.

Defaults follow the paper's protocol (Section 6.1 and Table 5): GCN
aggregator, weight decay 5e-4, lr per dataset/socket-count, delay r=5
for cd-r, and the per-dataset layer shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class TrainConfig:
    """Hyper-parameters of one training run."""

    num_layers: int = 3
    hidden_features: int = 256
    learning_rate: float = 0.01
    weight_decay: float = 5e-4
    num_epochs: int = 200
    optimizer: str = "adam"  # "adam" | "sgd"
    momentum: float = 0.9  # sgd only
    dropout: float = 0.0
    seed: int = 0
    #: GNN architecture: "sage" (paper default) or "gcn".
    model: str = "sage"
    #: aggregation kernel passed to the differentiable SpMM: any name in
    #: :data:`repro.kernels.KERNELS` (``baseline``/``vectorized``/
    #: ``reordered``/``blocked``) or ``"auto"``, which rides the vectorized
    #: segment-reduce engine (bucketed above the cache threshold).
    #: Validated at model build time.
    kernel: str = "auto"
    #: kernel worker threads: > 1 routes every AP (forward and backward)
    #: through the parallel execution engine (disjoint destination-row
    #: chunks, bit-identical outputs — see kernels/parallel.py).  ``None``
    #: defers to the REPRO_NUM_THREADS environment variable, else 1.
    num_threads: Optional[int] = None
    #: cd-r delay (epochs); the paper uses r=5.
    delay: int = 5
    #: evaluate accuracy every k epochs (0 = only at the end).
    eval_every: int = 10
    #: wire precision of DRPA aggregate payloads: "none" | "fp16" | "bf16"
    #: (the paper's future-work communication-volume optimization).
    compression: str = "none"
    #: distributed execution backend: "sim" (in-process lockstep world,
    #: deterministic, models communication) or "shm" (one OS process per
    #: rank over shared-memory mailboxes, measures wall-clock scaling).
    #: Both produce identical losses/parameters/counters — see
    #: docs/ARCHITECTURE.md § "Execution backends".
    backend: str = "sim"
    #: shm backend only: barrier/mailbox wait timeout.  A deadlocked
    #: exchange fails fast with an error instead of hanging the run.
    shm_timeout_s: float = 120.0

    def for_dataset(self, dataset_name: str) -> "TrainConfig":
        """Apply the paper's per-dataset model shape (Section 6.1)."""
        cfg = TrainConfig(**vars(self))
        if dataset_name.lower() == "reddit":
            cfg.num_layers = 2
            cfg.hidden_features = 16
        else:
            cfg.num_layers = 3
            cfg.hidden_features = 256
        return cfg


#: Learning rates of paper Table 5, keyed by (dataset, num_sockets).
PAPER_LEARNING_RATES = {
    ("reddit", 1): 0.01,
    ("reddit", 2): 0.028,
    ("reddit", 4): 0.028,
    ("reddit", 8): 0.028,
    ("reddit", 16): 0.028,
    ("ogbn-products", 1): 0.01,
    ("ogbn-products", 2): 0.05,
    ("ogbn-products", 4): 0.05,
    ("ogbn-products", 8): 0.08,
    ("ogbn-products", 16): 0.08,
    ("ogbn-products", 32): 0.07,
    ("ogbn-products", 64): 0.07,
    ("ogbn-papers", 1): 0.03,
    ("ogbn-papers", 128): 0.01,
}


def paper_learning_rate(dataset: str, num_sockets: int, default: float = 0.01) -> float:
    """cd-0 learning rate from Table 5 (fallback: nearest smaller socket
    count, then ``default``)."""
    key = (dataset.lower(), num_sockets)
    if key in PAPER_LEARNING_RATES:
        return PAPER_LEARNING_RATES[key]
    candidates = [
        (s, lr)
        for (d, s), lr in PAPER_LEARNING_RATES.items()
        if d == dataset.lower() and s <= num_sockets
    ]
    if candidates:
        return max(candidates)[1]
    return default
