"""Model factory shared by the trainers.

Both supported full-batch architectures expose the same two-phase layer
API (``aggregate`` / ``combine``), so the single-socket and distributed
trainers are model-agnostic:

- ``sage`` — GraphSAGE with the paper's GCN aggregation operator
  (normalizer ``1/(deg+1)`` applied in combine);
- ``gcn``  — vanilla GCN (symmetric ``1/sqrt(deg+1)`` applied around the
  aggregation).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import TrainConfig
from repro.nn.gcn import GCN
from repro.nn.sage import GraphSAGE
from repro.nn.tensor import Tensor

MODEL_NAMES = ("sage", "gcn")


def build_model(cfg: TrainConfig, feature_dim: int, num_classes: int):
    """Instantiate the configured architecture with replica-deterministic
    initialization."""
    name = cfg.model.lower()
    if name == "sage":
        return GraphSAGE(
            in_features=feature_dim,
            hidden_features=cfg.hidden_features,
            num_classes=num_classes,
            num_layers=cfg.num_layers,
            dropout=cfg.dropout,
            seed=cfg.seed,
            kernel=cfg.kernel,
            num_threads=cfg.num_threads,
        )
    if name == "gcn":
        return GCN(
            in_features=feature_dim,
            hidden_features=cfg.hidden_features,
            num_classes=num_classes,
            num_layers=cfg.num_layers,
            seed=cfg.seed,
            kernel=cfg.kernel,
            num_threads=cfg.num_threads,
        )
    raise ValueError(f"unknown model {cfg.model!r}; available: {MODEL_NAMES}")


def norm_from_degrees(model_name: str, degrees: np.ndarray) -> Tensor:
    """The architecture's degree normalizer as a constant column tensor.

    Distributed ranks pass *global* degrees here so every clone of a split
    vertex scales identically (required for cd-0 exactness).
    """
    deg = np.asarray(degrees, dtype=np.float32)
    name = model_name.lower()
    if name == "sage":
        vals = 1.0 / (deg + 1.0)
    elif name == "gcn":
        vals = 1.0 / np.sqrt(deg + 1.0)
    else:
        raise ValueError(f"unknown model {model_name!r}; available: {MODEL_NAMES}")
    return Tensor(vals.reshape(-1, 1))
