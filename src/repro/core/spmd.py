"""SPMD execution of the distributed trainer on the shm backend.

The lockstep :class:`~repro.core.dist_trainer.DistributedTrainer` drives
every rank from one process, phase by phase.  This module runs the *same*
per-rank computation as a single-program-multiple-data worker, one OS
process per Libra partition, over :class:`~repro.comm.shm.ShmWorld`:

- collectives become real blocking exchanges (gradient AllReduce through
  rank 0);
- the DRPA rounds run per-rank (``rank_synchronous_round`` with barriers
  for cd-0, barrier-free ``rank_delayed_round`` for cd-r — the actual
  communication/computation overlap the paper pipelines);
- epochs are separated by barriers, which is what keeps the delayed
  message sets identical to the lockstep schedule.

Equivalence contract (pinned by
``tests/integration/test_backend_equivalence.py``): for the same
partitioned graph, config and seed, sim and shm produce identical
per-epoch losses, identical final parameters and gradients, and identical
communication byte counters.  Every deviation from the lockstep trainer's
math is a bug here, not a tolerance.

Workers are *forked* from the parent after the trainer has built the
partitions and model replicas, so each worker inherits its
:class:`~repro.core.dist_trainer.RankState` copy-on-write and only the
final state (rank 0's parameters/gradients, replica-identical by
construction) travels back.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from repro.comm.shm import ShmCommunicator, ShmWorld, ShmWorldView
from repro.core.drpa import DRPAExchanger
from repro.core.metrics import EpochStats, Stopwatch
from repro.nn.tensor import Tensor, no_grad

SPLITS = ("train", "val", "test")


def run_shm_fit(trainer, num_epochs: int, verbose: bool = False):
    """Execute ``trainer.fit`` semantics on the multi-process backend.

    Forks one worker per partition, merges the per-rank epoch records
    into a :class:`~repro.core.dist_trainer.DistTrainResult` identical in
    shape (and, by the equivalence contract, in content) to the lockstep
    result, and loads the final replica state back into the parent's
    models so checkpointing and inspection see the trained weights.
    """
    from repro.core.dist_trainer import DistTrainResult

    world = ShmWorld(trainer.num_partitions, timeout=trainer.config.shm_timeout_s)
    per_rank = world.run(_rank_fit, trainer, num_epochs)

    result = DistTrainResult(
        algorithm=trainer.spec.display_name(),
        num_partitions=trainer.num_partitions,
        replication_factor=trainer.parted.replication_factor,
    )
    best_val = -1.0
    peak_inflight = 0
    for e in range(num_epochs):
        entries = [r["epochs"][e] for r in per_rank]
        # Global loss is the sum of per-rank owned-vertex losses, reduced
        # in rank order exactly like the lockstep driver.
        stats = EpochStats(
            epoch=e,
            loss=float(np.sum([entry["loss"] for entry in entries])),
            # ranks run concurrently: the epoch costs as much as the
            # slowest rank (the lockstep trainer's serial sum is the
            # simulated analogue).
            total_time_s=max(entry["total_time_s"] for entry in entries),
            local_agg_time_s=float(
                np.mean([entry["local_agg_time_s"] for entry in entries])
            ),
            remote_agg_time_s=float(
                np.mean([entry["remote_agg_time_s"] for entry in entries])
            ),
            comm_bytes=entries[0]["comm_bytes"],  # rank 0 reads the deltas
        )
        peak_inflight = max(peak_inflight, entries[0]["inflight_bytes"])
        if entries[0].get("eval") is not None:
            accs = _merge_eval([entry["eval"] for entry in entries])
            stats.train_acc = accs["train"]
            stats.val_acc = accs["val"]
            stats.test_acc = accs["test"]
            best_val = max(best_val, accs["val"])
            if verbose:
                print(
                    f"[{trainer.spec.display_name()} "
                    f"P={trainer.num_partitions} shm] "
                    f"epoch {e:4d} loss {stats.loss:.4f} "
                    f"val {accs['val']:.4f} test {accs['test']:.4f}"
                )
        result.epochs.append(stats)

    final = _merge_eval([r["final_eval"] for r in per_rank])
    result.final_test_acc = final["test"]
    result.best_val_acc = max(best_val, final["val"])
    counters = world.counters
    result.total_comm_bytes = counters.total_bytes
    result.peak_inflight_bytes = peak_inflight

    # Replicas are identical by construction; propagate rank 0's final
    # state into every parent-side model so downstream code (checkpoint
    # saving, equivalence tests) sees the trained weights and gradients.
    state = per_rank[0]["state_dict"]
    grads = per_rank[0]["grads"]
    for rank_state in trainer.ranks:
        rank_state.model.load_state_dict(state)
        for param, g in zip(rank_state.model.parameters(), grads):
            param.grad = None if g is None else g.copy()
    trainer.world.counters = counters  # expose measured traffic to callers
    return result


def _merge_eval(per_rank_eval: List[Dict]) -> Dict[str, float]:
    """Global accuracy from per-rank (correct, total) owned-vertex counts."""
    out = {}
    for split in SPLITS:
        correct = sum(entry[split][0] for entry in per_rank_eval)
        total = sum(entry[split][1] for entry in per_rank_eval)
        out[split] = correct / total if total else 0.0
    return out


# -- the per-rank worker -------------------------------------------------------


def _rank_fit(comm: ShmCommunicator, trainer, num_epochs: int) -> Dict:
    """One rank's whole ``fit`` (runs inside a forked worker process)."""
    rank = comm.rank
    cfg = trainer.config
    spec = trainer.spec
    state = trainer.ranks[rank]
    # Deferred feature slices (non-resident stores) materialize here,
    # post-fork: every rank maps the same read-only cold tier, so the OS
    # page cache backs all P workers with a single copy of the pages.
    state.ensure_features(trainer.feature_store)
    graph = trainer.parted.parts[rank].graph
    view = ShmWorldView(comm)
    # Per-rank exchangers over the shm world view — same routing tables
    # (deterministically rebuilt from the shared plan) as the lockstep
    # trainer's, same tags, same delays.
    agg_ex = DRPAExchanger(
        trainer.parted,
        trainer.plan,
        view,
        delay=spec.delay,
        num_bins=spec.num_bins,
        tag_prefix="agg",
        compression=cfg.compression,
    )
    grad_ex = DRPAExchanger(
        trainer.parted, trainer.plan, view, delay=0, num_bins=1, tag_prefix="grad"
    )
    eval_ex = DRPAExchanger(
        trainer.parted, trainer.plan, view, delay=0, num_bins=1, tag_prefix="eval"
    )
    sw = Stopwatch()

    epochs_out: List[Dict] = []
    prev_counters = None
    for epoch in range(num_epochs):
        # Quiesced counter read: nobody may post epoch-e traffic before
        # rank 0 snapshots, and nobody may post epoch-(e+1) traffic (or
        # eval traffic) before rank 0 reads the end state.
        comm.barrier()
        before = comm.counters_snapshot() if rank == 0 else None
        comm.barrier()

        t0 = time.perf_counter()
        sw.reset()
        local_loss = _train_epoch_rank(
            comm, trainer, state, graph, agg_ex, grad_ex, epoch, sw
        )
        comm.advance_epoch()
        total_time = time.perf_counter() - t0

        comm.barrier()
        comm_bytes = 0
        inflight = 0
        if rank == 0:
            delta = comm.counters_snapshot().delta_since(before)
            comm_bytes = delta.total_bytes
            inflight = comm.in_flight_bytes()
        comm.barrier()

        entry = {
            "loss": local_loss,
            "total_time_s": total_time,
            "local_agg_time_s": sw.get("local_agg"),
            "remote_agg_time_s": sw.get("remote_agg"),
            "comm_bytes": comm_bytes,
            "inflight_bytes": inflight,
            "eval": None,
        }
        if cfg.eval_every and (
            epoch % cfg.eval_every == 0 or epoch == num_epochs - 1
        ):
            entry["eval"] = _evaluate_rank(comm, trainer, state, graph, eval_ex)
        epochs_out.append(entry)

    final_eval = _evaluate_rank(comm, trainer, state, graph, eval_ex)
    result = {"epochs": epochs_out, "final_eval": final_eval}
    if rank == 0:
        result["state_dict"] = state.model.state_dict()
        result["grads"] = [
            None if p.grad is None else p.grad.copy()
            for p in state.model.parameters()
        ]
    return result


def _train_epoch_rank(
    comm: ShmCommunicator,
    trainer,
    state,
    graph,
    agg_ex: DRPAExchanger,
    grad_ex: DRPAExchanger,
    epoch: int,
    sw: Stopwatch,
) -> float:
    """One rank's side of ``DistributedTrainer.train_epoch``.

    Mirrors the lockstep trainer statement for statement — segmented
    forward, owned-vertex loss with the global normalizer, segmented
    backward with the cd-0 gradient tree-sum, gradient AllReduce,
    optimizer step.  Any divergence breaks the backend equivalence tests.
    """
    from repro.nn import masked_cross_entropy

    rank = comm.rank
    cfg = trainer.config
    spec = trainer.spec
    state.model.train()
    state.model.zero_grad()

    h = Tensor(state.features, requires_grad=False)
    records: List[Dict] = []
    num_layers = cfg.num_layers
    h_out: Optional[Tensor] = None
    for l in range(num_layers):
        layer = state.model.layers[l]
        # Segment A: local partial aggregation (the AP).
        with sw.time("local_agg"):
            z = layer.aggregate(graph, h, state.norm)
        # DRPA: remote partial aggregates.
        if spec.communicate:
            with sw.time("remote_agg"):
                if spec.is_synchronous:
                    agg_ex.rank_synchronous_round(
                        rank, z.data, l, epoch, comm.barrier
                    )
                else:
                    agg_ex.rank_delayed_round(rank, z.data, l, epoch)
        # Segment B: combine + MLP, on detached aggregates.
        z_leaf = Tensor(z.data, requires_grad=True)
        h_out = layer.combine(z_leaf, h, state.norm)
        records.append({"h_in": h, "z": z, "z_leaf": z_leaf, "h_out": h_out})
        if l < num_layers - 1:
            h = Tensor(h_out.data, requires_grad=True)

    # Loss over *owned* training vertices, normalized globally.
    mask = state.train_mask & state.owned
    if mask.any():
        loss = masked_cross_entropy(
            h_out, state.labels, mask, normalizer=trainer.global_train_count
        )
        local_loss = float(loss.data)
        loss.backward()
    else:
        local_loss = 0.0

    # Backward: walk the layer segments down.
    for l in range(num_layers - 1, -1, -1):
        rec = records[l]
        z_leaf = rec["z_leaf"]
        gz = (
            z_leaf.grad
            if z_leaf.grad is not None
            else np.zeros_like(z_leaf.data)
        )
        if spec.communicate and spec.sync_gradients:
            # Exact adjoint of the forward sync (tree-sum, in place).
            with sw.time("remote_agg"):
                grad_ex.rank_synchronous_round(rank, gz, l, epoch, comm.barrier)
        if l > 0:
            with sw.time("local_agg"):
                rec["z"].backward(gz)
            hin = rec["h_in"]
            g_hin = (
                hin.grad if hin.grad is not None else np.zeros_like(hin.data)
            )
            records[l - 1]["h_out"].backward(g_hin)

    # Parameter sync (AllReduce) + identical optimizer steps.
    for param in state.model.parameters():
        g = param.grad if param.grad is not None else np.zeros_like(param.data)
        param.grad = comm.all_reduce(g, op="sum")
    state.optimizer.step()
    return local_loss


def _evaluate_rank(
    comm: ShmCommunicator, trainer, state, graph, eval_ex: DRPAExchanger
) -> Dict[str, tuple]:
    """One rank's side of ``DistributedTrainer.evaluate``.

    Complete-neighbourhood inference (synchronous exchange regardless of
    the training algorithm); returns per-split ``(correct, total)`` over
    owned vertices for the parent/driver to merge globally.
    """
    rank = comm.rank
    cfg = trainer.config
    state.model.eval()
    with no_grad():
        h = Tensor(state.features)
        for l in range(cfg.num_layers):
            layer = state.model.layers[l]
            z = layer.aggregate(graph, h, state.norm)
            eval_ex.rank_synchronous_round(
                rank, z.data, l, comm.epoch, comm.barrier
            )
            h = layer.combine(z, h, state.norm)
    state.model.train()
    out = {}
    for split in SPLITS:
        split_mask = getattr(state, f"{split}_mask") & state.owned
        if split_mask.any():
            pred = h.data[split_mask].argmax(axis=1)
            out[split] = (
                int((pred == state.labels[split_mask]).sum()),
                int(split_mask.sum()),
            )
        else:
            out[split] = (0, 0)
    return out
