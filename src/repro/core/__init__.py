"""DistGNN core: training loops and the DRPA distributed algorithms.

- :mod:`repro.core.config` — training configuration (paper hyper-params).
- :mod:`repro.core.metrics` — epoch statistics, timers, results.
- :mod:`repro.core.trainer` — single-socket full-batch trainer (the
  paper's optimized baseline of Fig. 2).
- :mod:`repro.core.drpa` — the Delayed Remote Partial Aggregates state
  machine (paper Alg. 4): per-rank gather / async send / scatter-reduce /
  scatter plumbing over the split-vertex trees.
- :mod:`repro.core.algorithms` — the three communication regimes ``0c``,
  ``cd-0``, ``cd-r`` as strategy objects configuring DRPA.
- :mod:`repro.core.dist_trainer` — lockstep data-parallel trainer driving
  one model replica per rank with per-layer DRPA synchronization and
  AllReduce parameter sync.
- :mod:`repro.core.spmd` — the same per-rank computation as an SPMD
  worker over the multi-process shared-memory backend
  (``backend="shm"``), for measured wall-clock scaling.
- :mod:`repro.core.checkpoint` — self-describing ``.npz`` checkpoints
  (weights, optimizer slots, epoch cursor, architecture metadata) used
  by ``repro train --resume`` and the serving tier.
"""

from repro.core.algorithms import ALGORITHMS, AlgorithmSpec, get_algorithm
from repro.core.checkpoint import load_checkpoint, peek_checkpoint, save_checkpoint
from repro.core.config import TrainConfig
from repro.core.dist_trainer import DistributedTrainer, DistTrainResult
from repro.core.metrics import EpochStats, TrainResult
from repro.core.trainer import Trainer

__all__ = [
    "TrainConfig",
    "Trainer",
    "DistributedTrainer",
    "TrainResult",
    "DistTrainResult",
    "EpochStats",
    "AlgorithmSpec",
    "ALGORITHMS",
    "get_algorithm",
    "save_checkpoint",
    "load_checkpoint",
    "peek_checkpoint",
]
