"""Lockstep distributed trainer — DistGNN's data-parallel training loop.

One model replica per rank, the input graph vertex-cut partitioned, and
per-layer DRPA synchronization of split-vertex partial aggregates.  All
ranks execute in one process, phase by phase, which preserves the MPI
program's ordering semantics (collectives as barriers, cd-r messages
delivered ``r`` epochs late) while staying deterministic.

Per-layer segmented autograd
----------------------------
The forward pass of each layer is split at the aggregation output so the
remote partials can be injected between the two autograd segments::

    segment A:  z      = spmm(A_p, h_in)         (local partial aggregate)
    DRPA    :   z.data <- sync(z.data)            (0c: skip; cd-0: full;
                                                   cd-r: stale/binned)
    segment B:  h_out  = act(((z' + h_in) * norm) @ W + b)

Backward runs the segments in reverse, and for cd-0 tree-sums the
aggregate gradients between the segments — the exact adjoint of the
forward sync (every clone of a split vertex then applies the total
gradient).  Combined with the global-count loss normalization and the
sum-AllReduce of weight gradients, cd-0 training is mathematically
identical to single-socket training; 0c and cd-r inherit their forward
freshness contracts in backward (remote contributions are constants).

Both the per-rank local aggregates of segment A and the segment-A
backward APs dispatch through ``TrainConfig.kernel`` (default
``"auto"`` → the vectorized segment-reduce engine), so every algorithm
(0c / cd-0 / cd-r) runs the same array-native hot path as single-socket
training.  The full dispatch chain and this segmented-autograd contract
are documented in ``docs/ARCHITECTURE.md``.

Execution backends
------------------
``backend="sim"`` (default) is the lockstep in-process loop below;
``backend="shm"`` hands ``fit()`` to :mod:`repro.core.spmd`, which runs
the identical per-rank computation as one OS process per partition over
the :mod:`repro.comm.shm` shared-memory world — same losses, parameters
and byte counters (pinned by the backend-equivalence tests), but with
measured wall-clock parallelism and genuine cd-r overlap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.comm.communicator import World
from repro.core.algorithms import AlgorithmSpec, get_algorithm
from repro.core.config import TrainConfig
from repro.core.drpa import DRPAExchanger, owned_mask
from repro.core.metrics import EpochStats, Stopwatch, TrainResult
from repro.core.models import build_model, norm_from_degrees
from repro.core.sync import allreduce_gradients
from repro.featurestore import FeatureStore
from repro.graph.datasets import Dataset
from repro.nn import Adam, GraphSAGE, SGD, Tensor, masked_cross_entropy
from repro.nn.tensor import no_grad
from repro.partition import (
    build_partitions,
    build_split_trees,
    hash_edge_partition,
    libra_partition,
    random_edge_partition,
)
from repro.partition.partition import PartitionedGraph


@dataclass
class RankState:
    """Everything one rank owns.

    ``features`` may start as ``None`` on the shm backend with a
    non-resident feature store: the per-rank slice is then gathered
    *inside* the forked worker (:meth:`ensure_features`) from the shared
    read-only cold tier, so the parent never materializes ``P`` feature
    copies — the OS page cache backs all ranks with one set of pages.
    """

    rank: int
    features: Optional[np.ndarray]
    labels: np.ndarray
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray
    owned: np.ndarray
    norm: Tensor
    model: GraphSAGE
    optimizer: object
    #: global vertex ids of this rank's partition rows (the gather key
    #: for deferred feature materialization).
    global_ids: Optional[np.ndarray] = None

    def ensure_features(self, store: FeatureStore) -> np.ndarray:
        """Materialize this rank's feature slice from the store (no-op
        when already resident) — ``store.gather`` returns exactly
        ``dataset.features[global_ids]``, so deferral is invisible to
        the training math."""
        if self.features is None:
            self.features = store.gather(self.global_ids)
        return self.features


@dataclass
class DistTrainResult(TrainResult):
    """Training result plus distributed instrumentation."""

    algorithm: str = ""
    num_partitions: int = 0
    replication_factor: float = 0.0
    total_comm_bytes: int = 0
    peak_inflight_bytes: int = 0


class DistributedTrainer:
    """Drives ``num_partitions`` simulated ranks through DRPA training."""

    def __init__(
        self,
        dataset: Dataset,
        num_partitions: int,
        algorithm: Union[str, AlgorithmSpec] = "cd-0",
        config: Optional[TrainConfig] = None,
        partitioner: str = "libra",
        parted: Optional[PartitionedGraph] = None,
        backend: Optional[str] = None,
        feature_store: Optional[FeatureStore] = None,
    ):
        from repro.comm import validate_backend

        self.dataset = dataset
        self.config = config or TrainConfig().for_dataset(dataset.name)
        cfg = self.config
        #: feature tier all ranks read from.  Resident (default) slices
        #: eagerly, exactly the old per-rank copies.  A non-resident
        #: store on the shm backend defers slicing into the forked
        #: workers so every rank reads one shared cold tier.
        self.feature_store = (
            feature_store
            if feature_store is not None
            else FeatureStore.resident(dataset.features)
        )
        #: execution backend: "sim" (lockstep, this class's own loop) or
        #: "shm" (SPMD worker processes, :mod:`repro.core.spmd`).
        self.backend = validate_backend(backend or cfg.backend)
        self.spec = (
            algorithm
            if isinstance(algorithm, AlgorithmSpec)
            else get_algorithm(algorithm, delay=cfg.delay)
        )
        self.num_partitions = num_partitions

        if parted is None:
            assignment = _run_partitioner(
                partitioner, dataset.graph, num_partitions, cfg.seed
            )
            parted = build_partitions(dataset.graph, assignment, num_partitions)
        self.parted = parted
        self.plan = build_split_trees(
            parted, seed=cfg.seed, build_tree_objects=False
        )
        self.world = World(num_partitions)
        # Forward-aggregate exchanger: delay/bins from the algorithm.
        self.agg_exchanger = DRPAExchanger(
            parted,
            self.plan,
            self.world,
            delay=self.spec.delay,
            num_bins=self.spec.num_bins,
            tag_prefix="agg",
            compression=cfg.compression,
        )
        # Synchronous exchangers for cd-0 gradients and for evaluation.
        self.grad_exchanger = DRPAExchanger(
            parted, self.plan, self.world, delay=0, num_bins=1, tag_prefix="grad"
        )
        self.eval_exchanger = DRPAExchanger(
            parted, self.plan, self.world, delay=0, num_bins=1, tag_prefix="eval"
        )

        self.global_train_count = int(np.asarray(dataset.train_mask).sum())
        global_deg = dataset.graph.in_degrees().astype(np.float32)
        # shm workers gather their slice post-fork from the shared cold
        # tier; the lockstep simulator (and resident stores) slice here.
        defer_features = (
            self.backend == "shm" and self.feature_store.tier != "resident"
        )
        self.ranks: List[RankState] = []
        for r in range(num_partitions):
            part = parted.parts[r]
            gids = part.global_ids
            # Same seed across ranks -> identical replicas; dropout stays 0
            # (replica-identical forward is required for cd-0 exactness).
            model = build_model(cfg, dataset.feature_dim, dataset.num_classes)
            optimizer = _make_optimizer(model, cfg)
            # Clones share the *global* in-degree so normalization matches
            # the single-socket model after cd-0 synchronization.
            norm = norm_from_degrees(cfg.model, global_deg[gids])
            self.ranks.append(
                RankState(
                    rank=r,
                    features=(
                        None if defer_features else self.feature_store.gather(gids)
                    ),
                    global_ids=gids,
                    labels=dataset.labels[gids],
                    train_mask=dataset.train_mask[gids],
                    val_mask=dataset.val_mask[gids],
                    test_mask=dataset.test_mask[gids],
                    owned=owned_mask(parted, self.plan, r),
                    norm=norm,
                    model=model,
                    optimizer=optimizer,
                )
            )
        self.stopwatch = Stopwatch()

    # -- forward -----------------------------------------------------------------

    def _forward(self, epoch: int, record: bool) -> Dict:
        """Run the segmented forward on all ranks.

        Returns the per-layer tape records needed by backward when
        ``record`` is True (training), or just the logits otherwise.
        """
        P = self.num_partitions
        cfg = self.config
        sw = self.stopwatch
        h: List[Tensor] = [
            Tensor(state.features, requires_grad=False) for state in self.ranks
        ]
        records = []
        num_layers = cfg.num_layers
        for l in range(num_layers):
            # Segment A: local partial aggregation (the AP).
            z: List[Tensor] = []
            with sw.time("local_agg"):
                for state in self.ranks:
                    layer = state.model.layers[l]
                    z.append(
                        layer.aggregate(
                            self.parted.parts[state.rank].graph,
                            h[state.rank],
                            state.norm,
                        )
                    )
            # DRPA: remote partial aggregates (pre/post-processing + comm).
            if self.spec.communicate:
                vals = [t.data for t in z]
                with sw.time("remote_agg"):
                    if self.spec.is_synchronous:
                        self.agg_exchanger.synchronous_round(vals, layer=l, epoch=epoch)
                    else:
                        self.agg_exchanger.delayed_round(vals, layer=l, epoch=epoch)
            # Segment B: combine + MLP, on detached aggregates.
            z_leaf = [Tensor(t.data, requires_grad=True) for t in z]
            h_out: List[Tensor] = []
            for state in self.ranks:
                layer = state.model.layers[l]
                h_out.append(layer.combine(z_leaf[state.rank], h[state.rank], state.norm))
            if record:
                records.append({"h_in": h, "z": z, "z_leaf": z_leaf, "h_out": h_out})
            if l < num_layers - 1:
                h = [Tensor(t.data, requires_grad=True) for t in h_out]
        return {"records": records, "logits": h_out}

    # -- one training epoch ----------------------------------------------------------

    def train_epoch(self, epoch: int) -> EpochStats:
        if self.backend != "sim":
            raise RuntimeError(
                "train_epoch drives the lockstep (sim) path; the "
                f"{self.backend!r} backend trains whole runs via fit()"
            )
        P = self.num_partitions
        cfg = self.config
        sw = self.stopwatch
        sw.reset()
        counters_before = self.world.counters.snapshot()
        t0 = time.perf_counter()

        for state in self.ranks:
            state.model.train()
            state.model.zero_grad()

        out = self._forward(epoch, record=True)
        records, logits = out["records"], out["logits"]

        # Per-rank loss over *owned* training vertices, normalized globally.
        losses = []
        loss_values = []
        for state in self.ranks:
            mask = state.train_mask & state.owned
            if mask.any():
                loss = masked_cross_entropy(
                    logits[state.rank],
                    state.labels,
                    mask,
                    normalizer=self.global_train_count,
                )
            else:
                loss = None
            losses.append(loss)
            loss_values.append(
                float(loss.data) if loss is not None else 0.0
            )
        global_loss = float(np.sum(loss_values))

        # Backward: segment B of the top layer via the loss...
        for loss in losses:
            if loss is not None:
                loss.backward()
        # ...then walk the layer segments down.
        num_layers = cfg.num_layers
        for l in range(num_layers - 1, -1, -1):
            rec = records[l]
            gz = [
                t.grad if t.grad is not None else np.zeros_like(t.data)
                for t in rec["z_leaf"]
            ]
            if self.spec.communicate and self.spec.sync_gradients:
                # Exact adjoint of the forward sync: tree-sum the clone
                # gradients and redistribute (root adds leaf grads to its
                # own, then broadcasts the total back).
                with sw.time("remote_agg"):
                    self.grad_exchanger.synchronous_round(gz, layer=l, epoch=epoch)
            if l > 0:
                with sw.time("local_agg"):
                    for state in self.ranks:
                        rec["z"][state.rank].backward(gz[state.rank])
                prev = records[l - 1]
                for state in self.ranks:
                    hin = rec["h_in"][state.rank]
                    g_hin = (
                        hin.grad
                        if hin.grad is not None
                        else np.zeros_like(hin.data)
                    )
                    prev["h_out"][state.rank].backward(g_hin)

        # Parameter sync (AllReduce) + identical optimizer steps.
        allreduce_gradients(self.world, [s.model for s in self.ranks])
        for state in self.ranks:
            state.optimizer.step()

        self.world.advance_epoch()
        total = time.perf_counter() - t0
        delta = self.world.counters.delta_since(counters_before)
        return EpochStats(
            epoch=epoch,
            loss=global_loss,
            total_time_s=total,
            local_agg_time_s=sw.get("local_agg") / P,
            remote_agg_time_s=sw.get("remote_agg") / P,
            comm_bytes=delta.total_bytes,
        )

    # -- evaluation -------------------------------------------------------------------

    def evaluate(self) -> Dict[str, float]:
        """Global accuracy over owned vertices, complete-neighbourhood
        inference (synchronous aggregate exchange regardless of the
        training algorithm)."""
        cfg = self.config
        for state in self.ranks:
            state.model.eval()
            # shm runs materialize slices inside the workers; the parent
            # copy may still be deferred when evaluation happens here.
            state.ensure_features(self.feature_store)
        with no_grad():
            h = [Tensor(state.features) for state in self.ranks]
            for l in range(cfg.num_layers):
                z = [
                    state.model.layers[l].aggregate(
                        self.parted.parts[state.rank].graph, h[state.rank], state.norm
                    )
                    for state in self.ranks
                ]
                vals = [t.data for t in z]
                self.eval_exchanger.synchronous_round(vals, layer=l, epoch=self.world.epoch)
                h = [
                    state.model.layers[l].combine(
                        z[state.rank], h[state.rank], state.norm
                    )
                    for state in self.ranks
                ]
        for state in self.ranks:
            state.model.train()
        result = {}
        for split in ("train", "val", "test"):
            correct = total = 0
            for state in self.ranks:
                mask = getattr(state, f"{split}_mask") & state.owned
                if not mask.any():
                    continue
                pred = h[state.rank].data[mask].argmax(axis=1)
                correct += int((pred == state.labels[mask]).sum())
                total += int(mask.sum())
            result[split] = correct / total if total else 0.0
        return result

    # -- driver ----------------------------------------------------------------------

    def fit(
        self, num_epochs: Optional[int] = None, verbose: bool = False
    ) -> DistTrainResult:
        cfg = self.config
        num_epochs = num_epochs if num_epochs is not None else cfg.num_epochs
        if self.backend == "shm":
            from repro.core.spmd import run_shm_fit

            return run_shm_fit(self, num_epochs, verbose=verbose)
        result = DistTrainResult(
            algorithm=self.spec.display_name(),
            num_partitions=self.num_partitions,
            replication_factor=self.parted.replication_factor,
        )
        best_val = -1.0
        peak_inflight = 0
        for epoch in range(num_epochs):
            stats = self.train_epoch(epoch)
            peak_inflight = max(peak_inflight, self.world.queue.in_flight_bytes())
            if cfg.eval_every and (
                epoch % cfg.eval_every == 0 or epoch == num_epochs - 1
            ):
                accs = self.evaluate()
                stats.train_acc = accs["train"]
                stats.val_acc = accs["val"]
                stats.test_acc = accs["test"]
                best_val = max(best_val, accs["val"])
                if verbose:
                    print(
                        f"[{self.spec.display_name()} P={self.num_partitions}] "
                        f"epoch {epoch:4d} loss {stats.loss:.4f} "
                        f"val {accs['val']:.4f} test {accs['test']:.4f}"
                    )
            result.epochs.append(stats)
        final = self.evaluate()
        result.final_test_acc = final["test"]
        result.best_val_acc = max(best_val, final["val"])
        result.total_comm_bytes = self.world.counters.total_bytes
        result.peak_inflight_bytes = peak_inflight
        return result


def _make_optimizer(model: GraphSAGE, cfg: TrainConfig):
    if cfg.optimizer == "adam":
        return Adam(
            model.parameters(), lr=cfg.learning_rate, weight_decay=cfg.weight_decay
        )
    if cfg.optimizer == "sgd":
        return SGD(
            model.parameters(),
            lr=cfg.learning_rate,
            momentum=cfg.momentum,
            weight_decay=cfg.weight_decay,
        )
    raise ValueError(f"unknown optimizer {cfg.optimizer!r}")


def _run_partitioner(name: str, graph, num_partitions: int, seed: int) -> np.ndarray:
    if name == "libra":
        return libra_partition(graph, num_partitions, seed=seed)
    if name == "random":
        return random_edge_partition(graph, num_partitions, seed=seed)
    if name == "hash":
        return hash_edge_partition(graph, num_partitions)
    raise ValueError(f"unknown partitioner {name!r}; use libra/random/hash")
