"""Delayed Remote Partial Aggregates — paper Algorithm 4.

DRPA synchronizes split-vertex partial aggregates over the 1-level trees
of :mod:`repro.partition.tree` in two phases:

1. **up** (leaves -> root): every leaf clone *gathers* its partial
   aggregate rows (pre-processing, Alg. 4 line 10) and async-sends them to
   the root partition (line 11); the root *scatter-reduces* arrivals into
   its own rows (lines 13–14).
2. **down** (root -> leaves): the root gathers the now-complete rows
   (line 15) and async-sends them back (line 16); leaves *scatter*
   (replace) them into their rows (lines 19–20).

The delay parameter ``r`` turns the same machinery into the three paper
algorithms: messages posted with ``delay=r`` become receivable ``r``
epochs later, and the split-vertex trees are dealt into ``r`` bins with
bin ``e % r`` active at epoch ``e`` (lines 3–6, 9).  ``r=0`` is cd-0
(same-epoch synchronous exchange); skipping the exchange entirely is 0c.

The same exchanger also runs the **gradient** tree-sum used by cd-0's
backward pass: since after the forward sync every clone of a split vertex
holds the identical aggregate, the adjoint of the sync is the *sum* of the
clones' output gradients — computed by the identical up-reduce/down-
scatter sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.comm.communicator import World
from repro.comm.compression import PayloadCodec
from repro.graph.csr import INDEX_DTYPE
from repro.partition.partition import PartitionedGraph
from repro.partition.tree import TreeExchangePlan, bin_routes


@dataclass
class BinRouting:
    """Per-bin routing tables, grouped by (leaf_part, root_part) bucket.

    ``buckets[(p, q)] = (leaf_rows_on_p, root_rows_on_q)`` with both arrays
    route-aligned, so the up phase sends ``z[leaf_rows]`` from ``p`` to
    ``q`` where it reduces into ``z[root_rows]``, and the down phase runs
    the same tables in reverse.
    """

    buckets: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )

    @classmethod
    def from_plan(cls, plan: TreeExchangePlan) -> "BinRouting":
        buckets: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        if plan.num_routes == 0:
            return cls(buckets)
        order = np.lexsort((plan.root_part, plan.leaf_part))
        lp = plan.leaf_part[order]
        rp = plan.root_part[order]
        ll = plan.leaf_local[order]
        rl = plan.root_local[order]
        keys = lp * (rp.max() + 1) + rp
        boundaries = np.flatnonzero(np.diff(keys)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [keys.size]])
        for s, e in zip(starts, ends):
            buckets[(int(lp[s]), int(rp[s]))] = (ll[s:e], rl[s:e])
        return cls(buckets)

    def out_buckets(self, rank: int):
        """Buckets where ``rank`` is the leaf side (up-phase sender)."""
        return [
            (q, rows_leaf, rows_root)
            for (p, q), (rows_leaf, rows_root) in self.buckets.items()
            if p == rank
        ]

    def in_buckets(self, rank: int):
        """Buckets where ``rank`` is the root side (up-phase receiver)."""
        return [
            (p, rows_leaf, rows_root)
            for (p, q), (rows_leaf, rows_root) in self.buckets.items()
            if q == rank
        ]


class DRPAExchanger:
    """Executes the DRPA exchange for one partitioned graph.

    One exchanger serves all layers (messages are tagged with layer and
    direction) and both the forward aggregate sync and the cd-0 gradient
    sync.
    """

    def __init__(
        self,
        parted: PartitionedGraph,
        plan: TreeExchangePlan,
        world: World,
        delay: int = 0,
        num_bins: int = 1,
        tag_prefix: str = "agg",
        compression: str = "none",
    ):
        if delay < 0:
            raise ValueError("delay must be >= 0")
        if num_bins < 1:
            raise ValueError("num_bins must be >= 1")
        self.parted = parted
        self.plan = plan
        self.world = world
        self.delay = delay
        self.num_bins = num_bins
        self.tag_prefix = tag_prefix
        #: wire codec (fp16/bf16 halve the counted communication volume —
        #: the paper's stated future-work optimization).
        self.codec = PayloadCodec(compression)
        self.bins: List[BinRouting] = [
            BinRouting.from_plan(sub) for sub in bin_routes(plan, num_bins)
        ]
        self._comms = world.communicators()

    # -- epoch/bin bookkeeping -------------------------------------------------

    def bin_for_epoch(self, epoch: int) -> int:
        """Active bin at ``epoch`` (Alg. 4 line 9: ``i <- e % r``)."""
        return epoch % self.num_bins

    # -- up phase (leaves -> root) -----------------------------------------------

    def send_up(self, rank: int, values: np.ndarray, layer: int, epoch: int) -> int:
        """Gather this rank's leaf rows of the active bin and async-send.

        Returns the number of bytes posted (pre-processing accounting).
        """
        bin_id = self.bin_for_epoch(epoch)
        routing = self.bins[bin_id]
        comm = self._comms[rank]
        posted = 0
        for q, rows_leaf, _rows_root in routing.out_buckets(rank):
            payload = self.codec.encode(values[rows_leaf])  # local gather (line 10)
            comm.isend(
                q, payload, tag=(self.tag_prefix, "up", layer, bin_id),
                delay=self.delay,
            )
            posted += payload.nbytes
        return posted

    def reduce_up(self, rank: int, values: np.ndarray, layer: int) -> List[int]:
        """Scatter-reduce deliverable leaf partials into root rows.

        Returns the source ranks whose partials were applied (so the down
        phase knows which bins completed).  With delay ``r`` the arrivals
        were posted at epoch ``e - r`` — the staleness of cd-r.
        """
        comm = self._comms[rank]
        handled = []
        for bin_id in range(self.num_bins):
            for msg in comm.recv_ready(tag=(self.tag_prefix, "up", layer, bin_id)):
                rows = self.bins[bin_id].buckets[(msg.src, rank)][1]
                decoded = self.codec.decode(msg.payload, dtype=values.dtype)
                np.add.at(values, rows, decoded)  # line 14
                handled.append(msg.src)
        return handled

    # -- down phase (root -> leaves) -----------------------------------------------

    def send_down(self, rank: int, values: np.ndarray, layer: int, epoch: int) -> int:
        """Gather completed root rows of the bin reduced this epoch and send.

        With delay ``r`` the bin reduced at this epoch is the one whose up
        messages were posted at ``epoch - r`` — which is the same bin index
        as ``epoch`` (``(e - r) % r == e % r``), so the active-bin tables
        apply.
        """
        bin_id = self.bin_for_epoch(epoch)
        routing = self.bins[bin_id]
        comm = self._comms[rank]
        posted = 0
        for p, _rows_leaf, rows_root in routing.in_buckets(rank):
            payload = self.codec.encode(values[rows_root])  # local gather (line 15)
            comm.isend(
                p, payload, tag=(self.tag_prefix, "down", layer, bin_id),
                delay=self.delay,
            )
            posted += payload.nbytes
        return posted

    def apply_down(self, rank: int, values: np.ndarray, layer: int) -> int:
        """Scatter deliverable root totals into leaf rows (replace, line 20)."""
        comm = self._comms[rank]
        applied = 0
        for bin_id in range(self.num_bins):
            for msg in comm.recv_ready(tag=(self.tag_prefix, "down", layer, bin_id)):
                rows = self.bins[bin_id].buckets[(rank, msg.src)][0]
                values[rows] = self.codec.decode(msg.payload, dtype=values.dtype)
                applied += 1
        return applied

    # -- full synchronous round (cd-0 and gradient sync) ---------------------------

    def synchronous_round(
        self, all_values: List[np.ndarray], layer: int, epoch: int = 0
    ) -> None:
        """Run a complete up+down exchange within one epoch (requires
        ``delay == 0``).  After the round every clone of a split vertex
        holds the identical fully reduced row.
        """
        if self.delay != 0:
            raise RuntimeError("synchronous_round requires delay=0 (cd-0 semantics)")
        p = self.world.num_ranks
        for rank in range(p):
            self.send_up(rank, all_values[rank], layer, epoch)
        for rank in range(p):
            self.reduce_up(rank, all_values[rank], layer)
        for rank in range(p):
            self.send_down(rank, all_values[rank], layer, epoch)
        for rank in range(p):
            self.apply_down(rank, all_values[rank], layer)

    # -- per-rank SPMD rounds (shm backend) ----------------------------------------
    #
    # The lockstep rounds below drive *all* ranks from one process.  When
    # each rank runs in its own process (the shm backend), a rank executes
    # only its own side of the exchange; barriers replace the implicit
    # phase ordering of the lockstep loop.  The resulting message sets and
    # reduction orders are identical — the cross-backend equivalence tests
    # pin this.

    def rank_synchronous_round(
        self, rank: int, values: np.ndarray, layer: int, epoch: int, barrier
    ) -> None:
        """One rank's side of :meth:`synchronous_round`.

        ``barrier`` is a zero-arg callable blocking until all ranks
        arrive; it stands in for the lockstep driver's phase boundaries
        (all sends posted before any reduce; all root totals posted
        before any leaf applies).
        """
        if self.delay != 0:
            raise RuntimeError("synchronous_round requires delay=0 (cd-0 semantics)")
        self.send_up(rank, values, layer, epoch)
        barrier()
        self.reduce_up(rank, values, layer)
        self.send_down(rank, values, layer, epoch)
        barrier()
        self.apply_down(rank, values, layer)

    def rank_delayed_round(
        self, rank: int, values: np.ndarray, layer: int, epoch: int
    ) -> None:
        """One rank's side of :meth:`delayed_round` — no barriers needed.

        With ``delay >= 1`` every message consumed at epoch ``e`` was
        posted at ``e - delay`` or earlier, i.e. before a previous
        epoch-boundary barrier, so the ripe sets match the lockstep
        driver's without intra-round synchronization.  This is the
        genuine communication/computation overlap of cd-r: the posts of
        this epoch travel while every rank computes on.
        """
        if self.delay < 1:
            raise RuntimeError("rank_delayed_round requires delay >= 1 (cd-r)")
        self.send_up(rank, values, layer, epoch)
        handled = self.reduce_up(rank, values, layer)
        if handled:
            self.send_down(rank, values, layer, epoch)
        self.apply_down(rank, values, layer)

    # -- delayed round (cd-r) --------------------------------------------------------

    def delayed_round(
        self, all_values: List[np.ndarray], layer: int, epoch: int
    ) -> None:
        """One cd-r step: post this epoch's bin, consume what is ripe.

        Ordering follows Alg. 4 lines 10–21: send up, then (if anything
        arrived, i.e. ``e >= r``) reduce + send down, then (``e >= 2r``)
        apply arrived root totals.
        """
        p = self.world.num_ranks
        for rank in range(p):
            self.send_up(rank, all_values[rank], layer, epoch)
        handled = [
            self.reduce_up(rank, all_values[rank], layer) for rank in range(p)
        ]
        for rank in range(p):
            # Alg. 4's ``e >= r`` guard: only roots that actually reduced
            # arrivals this epoch forward totals back down.
            if handled[rank]:
                self.send_down(rank, all_values[rank], layer, epoch)
        for rank in range(p):
            self.apply_down(rank, all_values[rank], layer)


def owned_mask(parted: PartitionedGraph, plan: TreeExchangePlan, rank: int) -> np.ndarray:
    """Boolean mask of local vertices *owned* by ``rank``.

    A vertex is owned by the partition hosting its tree root (or its only
    clone).  Ownership de-duplicates split vertices for loss and accuracy
    computation — each global vertex is counted exactly once across ranks.
    """
    part = parted.parts[rank]
    mask = np.ones(part.num_vertices, dtype=bool)
    leaf_here = plan.leaf_part == rank
    mask[plan.leaf_local[leaf_here]] = False
    return mask
