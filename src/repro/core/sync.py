"""Data-parallel parameter synchronization.

The model is replicated per socket; each epoch the weight gradients are
AllReduced ("For parameter sync among the models, in each epoch, we use
AllReduce collective operation", Section 6.1).  Per-rank losses are
normalized by the *global* training-vertex count, so the sum-AllReduce of
gradients reproduces the single-socket mean-loss gradient exactly.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.comm.collectives import all_reduce
from repro.comm.communicator import World
from repro.nn.module import Module


def allreduce_gradients(world: World, models: Sequence[Module]) -> None:
    """Sum-AllReduce every parameter gradient across rank replicas.

    Parameters with no gradient on some rank contribute zeros (that rank
    had no loss terms touching them).
    """
    if len(models) != world.num_ranks:
        raise ValueError("need one model replica per rank")
    param_lists = [m.parameters() for m in models]
    n_params = len(param_lists[0])
    for plist in param_lists:
        if len(plist) != n_params:
            raise ValueError("model replicas disagree on parameter count")
    for i in range(n_params):
        grads = [
            plist[i].grad
            if plist[i].grad is not None
            else np.zeros_like(plist[i].data)
            for plist in param_lists
        ]
        reduced = all_reduce(world, grads, op="sum")
        for plist, g in zip(param_lists, reduced):
            plist[i].grad = g


def assert_replicas_in_sync(models: Sequence[Module], atol: float = 0.0) -> None:
    """Debug check: all replicas hold identical weights."""
    ref = models[0].state_dict()
    for m in models[1:]:
        for name, arr in m.state_dict().items():
            if not np.allclose(ref[name], arr, atol=atol):
                raise AssertionError(f"replica divergence in parameter {name}")
