"""Single-socket full-batch trainer.

This is the paper's optimized single-socket configuration: GraphSAGE-GCN
over the optimized aggregation kernels, full-batch loss on the training
vertices, Adam/SGD with the paper's weight decay.  It both serves as the
accuracy reference for the distributed algorithms (Table 5's 1-socket
rows) and produces the Total/AP time split of Fig. 2.

Every forward and backward AP of the model rides
``TrainConfig.kernel`` (default ``"auto"`` → the vectorized
segment-reduce engine; see ``docs/ARCHITECTURE.md``), so epoch times
measure memory behaviour, not interpreter overhead.  Setting
``TrainConfig.num_threads > 1`` (or ``REPRO_NUM_THREADS``) runs every
one of those APs on the parallel execution engine — the paper's
destination-dimension OpenMP parallelization — with bit-identical
losses and parameters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional


from repro.core.config import TrainConfig
from repro.core.metrics import EpochStats, TrainResult
from repro.core.models import build_model, norm_from_degrees
from repro.featurestore import FeatureStore
from repro.graph.datasets import Dataset
from repro.kernels.instrumentation import AP_TIMER
from repro.nn import Adam, GraphSAGE, SGD, Tensor, accuracy, masked_cross_entropy
from repro.nn.tensor import no_grad


class Trainer:
    """Full-batch single-socket training driver.

    Features are read through a :class:`~repro.featurestore.FeatureStore`
    (default: a resident store over ``dataset.features`` — bit-identical
    to reading the matrix directly).  Passing an ``mmap``-tier store
    trains out-of-core: every epoch's layer-0 aggregation gathers from
    the read-only cold map instead of a resident copy, with identical
    losses and parameters (``tests/featurestore/test_parity.py``).
    """

    def __init__(
        self,
        dataset: Dataset,
        config: Optional[TrainConfig] = None,
        feature_store: Optional[FeatureStore] = None,
    ):
        self.dataset = dataset
        self.config = config or TrainConfig().for_dataset(dataset.name)
        cfg = self.config
        self.model = build_model(cfg, dataset.feature_dim, dataset.num_classes)
        self.feature_store = (
            feature_store
            if feature_store is not None
            else FeatureStore.resident(dataset.features)
        )
        self.features = Tensor(self.feature_store.matrix())
        self.norm = norm_from_degrees(cfg.model, dataset.graph.in_degrees())
        self.optimizer = self._make_optimizer()

    def _make_optimizer(self):
        cfg = self.config
        if cfg.optimizer == "adam":
            return Adam(
                self.model.parameters(),
                lr=cfg.learning_rate,
                weight_decay=cfg.weight_decay,
            )
        if cfg.optimizer == "sgd":
            return SGD(
                self.model.parameters(),
                lr=cfg.learning_rate,
                momentum=cfg.momentum,
                weight_decay=cfg.weight_decay,
            )
        raise ValueError(f"unknown optimizer {cfg.optimizer!r}")

    # -- epoch loop -----------------------------------------------------------

    def train_epoch(self, epoch: int) -> EpochStats:
        ds, cfg = self.dataset, self.config
        ap_before = AP_TIMER.snapshot()
        t0 = time.perf_counter()
        self.model.train()
        self.model.zero_grad()
        logits = self.model(ds.graph, self.features, self.norm)
        loss = masked_cross_entropy(logits, ds.labels, ds.train_mask)
        loss.backward()
        self.optimizer.step()
        total = time.perf_counter() - t0
        return EpochStats(
            epoch=epoch,
            loss=float(loss.data),
            total_time_s=total,
            ap_time_s=AP_TIMER.snapshot() - ap_before,
        )

    def evaluate(self) -> dict:
        ds = self.dataset
        self.model.eval()
        with no_grad():
            logits = self.model(ds.graph, self.features, self.norm)
        self.model.train()
        return {
            "train": accuracy(logits.data, ds.labels, ds.train_mask),
            "val": accuracy(logits.data, ds.labels, ds.val_mask),
            "test": accuracy(logits.data, ds.labels, ds.test_mask),
        }

    def fit(
        self,
        num_epochs: Optional[int] = None,
        verbose: bool = False,
        start_epoch: int = 0,
    ) -> TrainResult:
        """Train epochs ``start_epoch .. num_epochs``.

        ``start_epoch`` is the resume cursor: after ``load_checkpoint``
        restored weights and optimizer slots from an epoch-``k``
        checkpoint, ``fit(num_epochs=N, start_epoch=k)`` runs the
        remaining ``N - k`` epochs and is bit-identical to an
        uninterrupted ``fit(N)`` (pinned by tests/core/test_checkpoint).
        """
        cfg = self.config
        num_epochs = num_epochs if num_epochs is not None else cfg.num_epochs
        result = TrainResult()
        best_val = -1.0
        for epoch in range(start_epoch, num_epochs):
            stats = self.train_epoch(epoch)
            if cfg.eval_every and (
                epoch % cfg.eval_every == 0 or epoch == num_epochs - 1
            ):
                accs = self.evaluate()
                stats.train_acc = accs["train"]
                stats.val_acc = accs["val"]
                stats.test_acc = accs["test"]
                best_val = max(best_val, accs["val"])
                if verbose:
                    print(
                        f"epoch {epoch:4d} loss {stats.loss:.4f} "
                        f"val {accs['val']:.4f} test {accs['test']:.4f}"
                    )
            result.epochs.append(stats)
        final = self.evaluate()
        result.final_test_acc = final["test"]
        result.best_val_acc = max(best_val, final["val"])
        return result
