"""Neural-network substrate: NumPy reverse-mode autograd + GNN models.

The paper trains GraphSAGE (and a heterogeneous R-GCN for the AM dataset)
through PyTorch; this package replaces that dependency with a small,
self-contained autograd engine whose differentiable SpMM routes gradients
along the transposed adjacency — the exact dataflow DGL registers for its
aggregation primitive.

- :mod:`repro.nn.tensor` — the autograd :class:`Tensor` and tape.
- :mod:`repro.nn.functional` — differentiable ops (matmul, spmm, relu,
  dropout, log_softmax, ...).
- :mod:`repro.nn.module` / :mod:`repro.nn.layers` — module system, Linear,
  Dropout.
- :mod:`repro.nn.sage` — GraphSAGE with the paper's GCN aggregator.
- :mod:`repro.nn.rgcn` — relational GCN for the heterogeneous AM workload.
- :mod:`repro.nn.loss` — masked cross-entropy.
- :mod:`repro.nn.optim` — SGD / Adam with the paper's weight decay.
- :mod:`repro.nn.init` — Xavier/Kaiming initializers.
"""

from repro.nn import functional
from repro.nn.gat import GAT, GATConv
from repro.nn.gcn import GCN, GCNConv
from repro.nn.gin import GIN, GINConv
from repro.nn.init import kaiming_uniform, xavier_uniform
from repro.nn.layers import Dropout, Linear
from repro.nn.loss import accuracy, masked_cross_entropy
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.rgcn import RGCN, RelGraphConv
from repro.nn.sage import GraphSAGE, SageConvGCN
from repro.nn.tensor import Tensor, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "functional",
    "Module",
    "Parameter",
    "Linear",
    "Dropout",
    "GraphSAGE",
    "SageConvGCN",
    "RGCN",
    "RelGraphConv",
    "GCN",
    "GCNConv",
    "GIN",
    "GINConv",
    "GAT",
    "GATConv",
    "masked_cross_entropy",
    "accuracy",
    "Optimizer",
    "SGD",
    "Adam",
    "xavier_uniform",
    "kaiming_uniform",
]
