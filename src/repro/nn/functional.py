"""Differentiable operations.

Each op builds a child :class:`~repro.nn.tensor.Tensor` whose backward
closure returns per-parent gradients.  Broadcasting ops reduce gradients
back to the parent shape with :func:`_unbroadcast` (summing the expanded
axes), matching NumPy broadcast semantics.

``spmm`` is the differentiable aggregation primitive: forward runs the
optimized kernel of :mod:`repro.kernels` (by default ``kernel="auto"``,
which rides the vectorized segment-reduce engine — see
``docs/ARCHITECTURE.md``); backward multiplies by the transposed
adjacency (cached per graph), which is exactly the adjoint of
``f_O = A f_V``.  Both directions of every graph op here therefore run
array-native end to end; no Python-level per-destination loop remains on
the training path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.spmm import aggregate
from repro.nn.tensor import Tensor, grad_enabled


def _unbroadcast(grad: np.ndarray, shape) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of NumPy broadcasting)."""
    if grad.shape == tuple(shape):
        return grad
    # sum leading extra dims
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _make(data, parents, backward_fn, name=""):
    track = grad_enabled() and any(p.requires_grad or p._parents for p in parents)
    return Tensor(
        data,
        requires_grad=False,
        _parents=tuple(parents) if track else (),
        _backward_fn=backward_fn if track else None,
        name=name,
    )


# -- arithmetic -----------------------------------------------------------------


def add(a: Tensor, b: Tensor) -> Tensor:
    out = a.data + b.data

    def backward(g):
        return _unbroadcast(g, a.shape), _unbroadcast(g, b.shape)

    return _make(out, (a, b), backward, "add")


def sub(a: Tensor, b: Tensor) -> Tensor:
    out = a.data - b.data

    def backward(g):
        return _unbroadcast(g, a.shape), _unbroadcast(-g, b.shape)

    return _make(out, (a, b), backward, "sub")


def mul(a: Tensor, b: Tensor) -> Tensor:
    out = a.data * b.data

    def backward(g):
        return (
            _unbroadcast(g * b.data, a.shape),
            _unbroadcast(g * a.data, b.shape),
        )

    return _make(out, (a, b), backward, "mul")


def matmul(a: Tensor, b: Tensor) -> Tensor:
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("matmul supports 2-D tensors only")
    out = a.data @ b.data

    def backward(g):
        return g @ b.data.T, a.data.T @ g

    return _make(out, (a, b), backward, "matmul")


# -- reductions -------------------------------------------------------------------


def sum_all(a: Tensor) -> Tensor:
    out = np.asarray(a.data.sum(), dtype=a.dtype)

    def backward(g):
        return (np.broadcast_to(g, a.shape).astype(a.dtype),)

    return _make(out, (a,), backward, "sum")


def mean_all(a: Tensor) -> Tensor:
    n = a.data.size
    out = np.asarray(a.data.mean(), dtype=a.dtype)

    def backward(g):
        return (np.broadcast_to(g / n, a.shape).astype(a.dtype),)

    return _make(out, (a,), backward, "mean")


# -- nonlinearities -----------------------------------------------------------------


def relu(a: Tensor) -> Tensor:
    mask = a.data > 0
    out = a.data * mask

    def backward(g):
        return (g * mask,)

    return _make(out, (a,), backward, "relu")


def dropout(a: Tensor, p: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-p)``."""
    if not training or p <= 0.0:
        return a
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout p must be in [0, 1)")
    mask = (rng.random(a.shape) >= p) / (1.0 - p)
    mask = mask.astype(a.dtype)
    out = a.data * mask

    def backward(g):
        return (g * mask,)

    return _make(out, (a,), backward, "dropout")


def log_softmax(a: Tensor) -> Tensor:
    """Row-wise log-softmax (numerically stable)."""
    z = a.data - a.data.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(z).sum(axis=1, keepdims=True))
    out = z - logsumexp
    softmax = np.exp(out)

    def backward(g):
        return (g - softmax * g.sum(axis=1, keepdims=True),)

    return _make(out, (a,), backward, "log_softmax")


# -- graph ops -------------------------------------------------------------------


def spmm(
    graph: CSRGraph,
    features: Tensor,
    kernel: str = "auto",
    num_blocks: Optional[int] = None,
    num_threads: Optional[int] = None,
) -> Tensor:
    """Differentiable aggregation ``out = A @ features`` (copylhs/sum AP).

    ``kernel`` accepts any :data:`repro.kernels.KERNELS` name (``"auto"``
    picks the vectorized engine — threaded over destination chunks when
    ``num_threads > 1`` — or, above the block threshold, the bucketed
    variant).  Backward applies the transposed adjacency:
    ``d features = A^T @ g`` on the same kernel and thread count.  The
    reversed CSR is cached on the graph object after the first call so
    training reuses it every epoch.
    """
    out = aggregate(
        graph, features.data, kernel=kernel, num_blocks=num_blocks,
        num_threads=num_threads,
    )
    reverse = _cached_reverse(graph)

    def backward(g):
        return (
            aggregate(
                reverse, g, kernel=kernel, num_blocks=num_blocks,
                num_threads=num_threads,
            ),
        )

    return _make(out, (features,), backward, "spmm")


def _cached_reverse(graph: CSRGraph) -> CSRGraph:
    # The reverse is cached on the graph instance itself (an id()-keyed
    # global dict would go stale when Python reuses object ids after GC).
    rev = getattr(graph, "_spmm_reverse", None)
    if rev is None:
        rev = graph.reverse()
        object.__setattr__(graph, "_spmm_reverse", rev)
    return rev


def _cached_dst_map(graph: CSRGraph) -> np.ndarray:
    """Per-edge destination ids in CSR order, cached on the graph.

    ``edge_softmax`` backward needs this map every call of every epoch;
    like :func:`_cached_reverse` it is built once per graph instance.
    """
    dst = getattr(graph, "_csr_dst_map", None)
    if dst is None:
        dst = np.repeat(np.arange(graph.num_vertices), np.diff(graph.indptr))
        object.__setattr__(graph, "_csr_dst_map", dst)
    return dst


def leaky_relu(a: Tensor, slope: float = 0.2) -> Tensor:
    mask = a.data > 0
    out = np.where(mask, a.data, slope * a.data)

    def backward(g):
        return (np.where(mask, g, slope * g),)

    return _make(out, (a,), backward, "leaky_relu")


def edge_scores(graph: CSRGraph, src_score: Tensor, dst_score: Tensor) -> Tensor:
    """Per-edge score ``e_uv = s_src[u] + s_dst[v]`` (GAT logits).

    Inputs are ``(N, 1)`` columns; output is ``(num_edges, 1)`` in edge-id
    order.  This is the SDDMM-``add`` of paper Section 2.2, made
    differentiable: backward scatter-adds edge gradients to the endpoint
    scores.
    """
    src, dst, eid = graph.to_coo()
    out = np.empty((graph.num_edges, 1), dtype=src_score.dtype)
    out[eid] = src_score.data[src] + dst_score.data[dst]

    def backward(g):
        ge = g[eid]
        gs = np.zeros_like(src_score.data)
        gd = np.zeros_like(dst_score.data)
        np.add.at(gs[:, 0], src, ge[:, 0])
        np.add.at(gd[:, 0], dst, ge[:, 0])
        return gs, gd

    return _make(out, (src_score, dst_score), backward, "edge_scores")


def edge_softmax(graph: CSRGraph, logits: Tensor) -> Tensor:
    """Differentiable per-destination softmax over in-edge logits."""
    from repro.kernels.sddmm import edge_softmax_vectorized

    soft = edge_softmax_vectorized(graph, logits.data)
    eids = graph.edge_ids
    dtype = logits.dtype

    def backward(g):
        # d logits = s * (g - sum_per_segment(g * s)), computed in the
        # input dtype over the cached per-edge destination map (rebuilt
        # scratch here used to dominate the backward's allocation cost).
        dst = _cached_dst_map(graph)
        gs = g * soft
        seg = np.zeros(graph.num_vertices, dtype=dtype)
        np.add.at(seg, dst, gs[eids, 0])
        per_edge = np.empty_like(g)
        per_edge[eids, 0] = seg[dst]
        return ((soft * (g - per_edge)).astype(dtype, copy=False),)

    return _make(soft, (logits,), backward, "edge_softmax")


def weighted_spmm(
    graph: CSRGraph,
    features: Tensor,
    weights: Tensor,
    kernel: str = "auto",
    num_threads: Optional[int] = None,
) -> Tensor:
    """Attention-weighted aggregation ``out[v] = sum_u w_uv * h_u``.

    ``weights`` is ``(num_edges, 1)`` in edge-id order.  The ``mul``/``sum``
    AP has no SpMM lowering, so ``auto`` runs the gather → ``reduceat``
    engine — unchunked below the cache threshold, bucketed above it so
    the per-edge intermediate stays bounded on large graphs.
    Gradients flow to both operands: features through the transposed
    adjacency with the same weights, weights through the SDDMM-dot of
    endpoint features/gradients.
    """
    out = aggregate(
        graph, features.data, weights.data, binary_op="mul", reduce_op="sum",
        kernel=kernel, num_threads=num_threads,
    )
    reverse = _cached_reverse(graph)

    def backward(g):
        gf = aggregate(
            reverse, g, weights.data, binary_op="mul", reduce_op="sum",
            kernel=kernel, num_threads=num_threads,
        )
        from repro.kernels.sddmm import sddmm

        gw = sddmm(graph, features.data, g, op="dot").astype(weights.dtype)
        return gf.astype(features.dtype), gw

    return _make(out, (features, weights), backward, "weighted_spmm")


def pick(a: Tensor, rows: np.ndarray, cols: np.ndarray) -> Tensor:
    """Element selection ``out[i] = a[rows[i], cols[i]]`` (for NLL loss)."""
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    out = a.data[rows, cols]

    def backward(g):
        ga = np.zeros_like(a.data)
        np.add.at(ga, (rows, cols), g)
        return (ga,)

    return _make(out, (a,), backward, "pick")


def rows_add(a: Tensor, rows: np.ndarray, values: np.ndarray) -> Tensor:
    """Out-of-place ``out[rows] += values`` with identity backward.

    Used by the distributed trainer to inject *constant* remote partial
    aggregates into split-vertex rows: the injected values are data from
    other ranks (their gradients are handled by the explicit tree exchange,
    not by this tape), so backward passes the local gradient through
    unchanged.
    """
    out = a.data.copy()
    np.add.at(out, rows, values.astype(a.dtype))

    def backward(g):
        return (g,)

    return _make(out, (a,), backward, "rows_add")
