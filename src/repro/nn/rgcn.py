"""Relational GCN for heterogeneous graphs (the paper's RGCN-hetero on AM).

Each relation ``r`` carries its own weight matrix; a layer computes

    h' = act( Σ_r (A_r @ h) * norm_r @ W_r  +  h @ W_self + b )

i.e. one aggregation primitive invocation per relation — which is why the
AM bar of paper Fig. 2(d) is still AP-dominated, and why our single-socket
benchmark runs R-GCN through the very same kernels.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class RelGraphConv(Module):
    """One R-GCN layer over a dict of relation graphs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        relation_names: List[str],
        activation: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.relation_names = list(relation_names)
        for rel in self.relation_names:
            self.register_module(
                f"w_{rel}", Linear(in_features, out_features, bias=False, rng=rng)
            )
        self.self_loop = Linear(in_features, out_features, rng=rng)
        self.activation = activation

    def __call__(
        self,
        relations: Dict[str, CSRGraph],
        h: Tensor,
        norms: Dict[str, Tensor],
    ) -> Tensor:
        out = self.self_loop(h)
        for rel in self.relation_names:
            graph = relations.get(rel)
            if graph is None or graph.num_edges == 0:
                continue
            z = F.spmm(graph, h)
            z = F.mul(z, norms[rel])
            w: Linear = getattr(self, f"w_{rel}")
            out = F.add(out, w(z))
        if self.activation:
            out = F.relu(out)
        return out


class RGCN(Module):
    """Stacked R-GCN for heterogeneous vertex classification."""

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        num_classes: int,
        relation_names: List[str],
        num_layers: int = 2,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden_features] * (num_layers - 1) + [num_classes]
        self.layers: List[RelGraphConv] = []
        for i in range(num_layers):
            layer = RelGraphConv(
                dims[i],
                dims[i + 1],
                relation_names,
                activation=(i < num_layers - 1),
                rng=rng,
            )
            self.register_module(f"layer{i}", layer)
            self.layers.append(layer)

    def __call__(
        self,
        relations: Dict[str, CSRGraph],
        features: Tensor,
        norms: Dict[str, Tensor],
    ) -> Tensor:
        h = features
        for layer in self.layers:
            h = layer(relations, h, norms)
        return h


def relation_norms(relations: Dict[str, CSRGraph]) -> Dict[str, Tensor]:
    """Per-relation ``1/max(in_degree, 1)`` normalizers."""
    norms = {}
    for rel, g in relations.items():
        deg = g.in_degrees().astype(np.float32)
        norms[rel] = Tensor((1.0 / np.maximum(deg, 1.0)).reshape(-1, 1))
    return norms
