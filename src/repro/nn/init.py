"""Weight initializers."""

from __future__ import annotations

import numpy as np


def xavier_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform — DGL's default for GraphConv weights."""
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out)).astype(np.float32)


def kaiming_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """He/Kaiming uniform for ReLU stacks."""
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=(fan_in, fan_out)).astype(np.float32)
