"""Basic neural layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.init import xavier_uniform
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            xavier_uniform(in_features, out_features, rng), name="weight"
        )
        if bias:
            self.bias = Parameter(np.zeros(out_features, dtype=np.float32), name="bias")
        else:
            self.bias = None

    def __call__(self, x: Tensor) -> Tensor:
        out = F.matmul(x, self.weight)
        if self.bias is not None:
            out = F.add(out, self.bias)
        return out


class Dropout(Module):
    """Inverted dropout with a module-owned RNG stream."""

    def __init__(self, p: float = 0.5, seed: int = 0):
        super().__init__()
        self.p = p
        self.rng = np.random.default_rng(seed)

    def __call__(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, self.training)
