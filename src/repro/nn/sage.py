"""GraphSAGE with the paper's GCN aggregation operator.

Paper Section 6.1: "we employed GCN aggregation operator where (i) ⊕ is
element-wise sum and (ii) as a post-processing step, it adds the
aggregated and original features of each vertex and normalizes that sum
with respect to the in-degree of the vertex".  Per layer:

    z   = A @ h                          (aggregation primitive)
    out = act( ((z + h) * 1/(deg + 1)) @ W + b )

Each layer exposes the aggregation and the post-processing **separately**
(:meth:`SageConvGCN.aggregate` / :meth:`SageConvGCN.combine`).  The
single-socket path runs them back to back; the distributed trainer
inserts the DRPA split-vertex synchronization between them — exactly the
point where DistGNN's remote partial aggregates enter.

Model shapes follow the paper: 2 layers / 16 hidden for Reddit, 3 layers
/ 256 hidden for the other datasets.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.nn import functional as F
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class SageConvGCN(Module):
    """One GraphSAGE-GCN layer (aggregate -> add self -> normalize -> MLP)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: bool = True,
        rng: Optional[np.random.Generator] = None,
        kernel: str = "auto",
        num_threads: Optional[int] = None,
    ):
        super().__init__()
        from repro.kernels import validate_kernel

        self.linear = Linear(in_features, out_features, rng=rng)
        self.activation = activation
        #: aggregation kernel name forwarded to ``F.spmm`` (validated here
        #: so a bad ``TrainConfig.kernel`` fails at model build time).
        self.kernel = validate_kernel(kernel)
        #: thread count forwarded to ``F.spmm``; > 1 routes the AP through
        #: the parallel execution engine (bit-identical outputs).
        self.num_threads = num_threads

    def aggregate(
        self, graph: CSRGraph, h: Tensor, norm: Optional[Tensor] = None
    ) -> Tensor:
        """The AP: pull-sum neighbour features (paper Alg. 1 with
        copylhs/sum).  ``norm`` is accepted for layer-API uniformity with
        :class:`~repro.nn.gcn.GCNConv` (whose scaling precedes the AP)
        and ignored here — GraphSAGE normalizes in :meth:`combine`.
        """
        return F.spmm(graph, h, kernel=self.kernel, num_threads=self.num_threads)

    def combine(self, z: Tensor, h: Tensor, norm: Tensor) -> Tensor:
        """Post-processing: ``act(((z + h) * norm) @ W + b)``."""
        mixed = F.mul(F.add(z, h), norm)
        out = self.linear(mixed)
        if self.activation:
            out = F.relu(out)
        return out

    def __call__(self, graph: CSRGraph, h: Tensor, norm: Tensor) -> Tensor:
        return self.combine(self.aggregate(graph, h), h, norm)


class GraphSAGE(Module):
    """Multi-layer GraphSAGE-GCN for full-batch vertex classification."""

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        num_classes: int,
        num_layers: int = 3,
        dropout: float = 0.0,
        seed: int = 0,
        kernel: str = "auto",
        num_threads: Optional[int] = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = np.random.default_rng(seed)
        dims = (
            [in_features]
            + [hidden_features] * (num_layers - 1)
            + [num_classes]
        )
        self.layers: List[SageConvGCN] = []
        for i in range(num_layers):
            layer = SageConvGCN(
                dims[i],
                dims[i + 1],
                activation=(i < num_layers - 1),
                rng=rng,
                kernel=kernel,
                num_threads=num_threads,
            )
            self.register_module(f"layer{i}", layer)
            self.layers.append(layer)
        self.dropout = Dropout(dropout, seed=seed + 1) if dropout > 0 else None
        self.num_layers = num_layers

    def __call__(self, graph: CSRGraph, features: Tensor, norm: Tensor) -> Tensor:
        """Full forward pass (single-socket path)."""
        h = features
        for i, layer in enumerate(self.layers):
            h = layer(graph, h, norm)
            if self.dropout is not None and i < self.num_layers - 1:
                h = self.dropout(h)
        return h

    @staticmethod
    def paper_config(dataset_name: str) -> dict:
        """Layer counts / hidden sizes from paper Section 6.1."""
        if dataset_name.lower() == "reddit":
            return {"num_layers": 2, "hidden_features": 16}
        return {"num_layers": 3, "hidden_features": 256}


def gcn_norm_tensor(graph: CSRGraph) -> Tensor:
    """``1/(in_degree + 1)`` column vector as a constant tensor."""
    deg = graph.in_degrees().astype(np.float32)
    return Tensor((1.0 / (deg + 1.0)).reshape(-1, 1))
