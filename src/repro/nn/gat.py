"""Graph Attention Network on the SpMM/SDDMM substrate.

The paper notes that graph frameworks without DL primitives "lack the
support for ... the graph attention models" (Section 3) — GAT is the
canonical example, and it exercises *both* DGL primitives: SDDMM for the
attention logits and the (weighted) aggregation primitive for the
message reduction.  A layer is

    z    = h W
    e_uv = LeakyReLU(a_l . z_u + a_r . z_v)          (SDDMM)
    α    = softmax_v(e)                              (edge softmax)
    h'_v = act( Σ_u α_uv z_u + b )                   (weighted AP)
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.nn import functional as F
from repro.nn.init import xavier_uniform
from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class GATConv(Module):
    """Single-head graph attention layer."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: bool = True,
        negative_slope: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.linear = Linear(in_features, out_features, bias=False, rng=rng)
        self.attn_l = Parameter(
            xavier_uniform(out_features, 1, rng), name="attn_l"
        )
        self.attn_r = Parameter(
            xavier_uniform(out_features, 1, rng), name="attn_r"
        )
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32), name="bias")
        self.activation = activation
        self.negative_slope = negative_slope

    def __call__(self, graph: CSRGraph, h: Tensor) -> Tensor:
        z = self.linear(h)
        s_src = F.matmul(z, self.attn_l)  # (N, 1)
        s_dst = F.matmul(z, self.attn_r)
        logits = F.leaky_relu(
            F.edge_scores(graph, s_src, s_dst), self.negative_slope
        )
        alpha = F.edge_softmax(graph, logits)
        out = F.add(F.weighted_spmm(graph, z, alpha), self.bias)
        if self.activation:
            out = F.relu(out)
        return out


class GAT(Module):
    """Stacked single-head GAT for vertex classification."""

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        num_classes: int,
        num_layers: int = 2,
        seed: int = 0,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden_features] * (num_layers - 1) + [num_classes]
        self.layers: List[GATConv] = []
        for i in range(num_layers):
            layer = GATConv(
                dims[i],
                dims[i + 1],
                activation=(i < num_layers - 1),
                rng=rng,
            )
            self.register_module(f"layer{i}", layer)
            self.layers.append(layer)

    def __call__(self, graph: CSRGraph, features: Tensor) -> Tensor:
        h = features
        for layer in self.layers:
            h = layer(graph, h)
        return h
