"""Vanilla GCN (Kipf & Welling) on the same aggregation substrate.

Part of the paper's future work ("extend DistGNN to different GNN models,
beyond GraphSAGE").  A GCN layer is

    h' = act( (D^-1/2 (A + I) D^-1/2 h) @ W + b )

which lowers to the identical copylhs/sum aggregation primitive with a
symmetric pre/post degree normalization — demonstrating that the DistGNN
kernel and DRPA machinery are model-agnostic.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor


def symmetric_norm(graph: CSRGraph) -> Tensor:
    """``(deg + 1)^-1/2`` column vector (the +1 is the implicit self loop)."""
    deg = graph.in_degrees().astype(np.float32)
    return Tensor((1.0 / np.sqrt(deg + 1.0)).reshape(-1, 1))


class GCNConv(Module):
    """One GCN layer with implicit self loops."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: bool = True,
        rng: Optional[np.random.Generator] = None,
        kernel: str = "auto",
        num_threads: Optional[int] = None,
    ):
        super().__init__()
        from repro.kernels import validate_kernel

        self.linear = Linear(in_features, out_features, rng=rng)
        self.activation = activation
        self.kernel = validate_kernel(kernel)
        self.num_threads = num_threads

    def aggregate(self, graph: CSRGraph, h: Tensor, sym_norm: Tensor) -> Tensor:
        """The AP over pre-scaled features: ``z = A @ (h * D^-1/2)``.

        Exposed separately (like :class:`~repro.nn.sage.SageConvGCN`) so
        the distributed trainer can insert the DRPA split-vertex sync on
        the partial aggregates — partials of the *scaled* features sum
        across partitions exactly like GraphSAGE's.
        """
        scaled = F.mul(h, sym_norm)
        return F.spmm(
            graph, scaled, kernel=self.kernel, num_threads=self.num_threads
        )

    def combine(self, z: Tensor, h: Tensor, sym_norm: Tensor) -> Tensor:
        """Post-processing: ``act(((z + h * D^-1/2) * D^-1/2) @ W + b)``."""
        scaled = F.mul(h, sym_norm)
        out = self.linear(F.mul(F.add(z, scaled), sym_norm))
        if self.activation:
            out = F.relu(out)
        return out

    def __call__(self, graph: CSRGraph, h: Tensor, sym_norm: Tensor) -> Tensor:
        # D^-1/2 on the way in, aggregate (+ self), D^-1/2 on the way out.
        return self.combine(self.aggregate(graph, h, sym_norm), h, sym_norm)


class GCN(Module):
    """Stacked GCN for full-batch vertex classification."""

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        num_classes: int,
        num_layers: int = 2,
        seed: int = 0,
        kernel: str = "auto",
        num_threads: Optional[int] = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden_features] * (num_layers - 1) + [num_classes]
        self.layers: List[GCNConv] = []
        for i in range(num_layers):
            layer = GCNConv(
                dims[i],
                dims[i + 1],
                activation=(i < num_layers - 1),
                rng=rng,
                kernel=kernel,
                num_threads=num_threads,
            )
            self.register_module(f"layer{i}", layer)
            self.layers.append(layer)

    def __call__(self, graph: CSRGraph, features: Tensor, sym_norm: Tensor) -> Tensor:
        h = features
        for layer in self.layers:
            h = layer(graph, h, sym_norm)
        return h
