"""Reverse-mode autograd tensor.

A :class:`Tensor` wraps a NumPy array plus tape bookkeeping: the parent
tensors it was computed from and a backward closure producing each
parent's gradient contribution.  ``backward()`` runs a topological sweep
accumulating gradients into every reachable tensor with
``requires_grad=True``.

Design notes
------------
- Gradients are plain ``np.ndarray`` in the same dtype as the data.
- The tape is per-tensor (no global state), so the distributed trainer
  can backprop independent per-layer segments (see
  :mod:`repro.core.dist_trainer`) by detaching segment boundaries.
- ``no_grad()`` suppresses tape construction for evaluation passes.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Disable tape recording inside the context (evaluation mode)."""
    global _grad_enabled
    prev = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = prev


def grad_enabled() -> bool:
    return _grad_enabled


class Tensor:
    """NumPy array with reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward_fn: Optional[Callable[[np.ndarray], Sequence[Optional[np.ndarray]]]] = None,
        name: str = "",
    ):
        self.data = np.asarray(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents if _grad_enabled else ()
        self._backward_fn = _backward_fn if _grad_enabled else None
        self.name = name

    # -- introspection ---------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def is_leaf(self) -> bool:
        return not self._parents

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{tag})"

    # -- graph manipulation ----------------------------------------------------

    def detach(self) -> "Tensor":
        """A view of the data cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def accumulate_grad(self, g: np.ndarray) -> None:
        if g.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {g.shape} does not match tensor {self.data.shape}"
            )
        if self.grad is None:
            self.grad = g.astype(self.data.dtype, copy=True)
        else:
            self.grad += g

    # -- backward --------------------------------------------------------------

    def backward(self, gradient: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``gradient`` defaults to 1 for scalars (loss values); non-scalar
        roots require an explicit output gradient — the distributed trainer
        uses this to chain per-layer segments.
        """
        if gradient is None:
            if self.data.size != 1:
                raise ValueError("backward() without gradient requires a scalar")
            gradient = np.ones_like(self.data)
        gradient = np.asarray(gradient, dtype=self.data.dtype)
        if gradient.shape != self.data.shape:
            raise ValueError(
                f"output gradient shape {gradient.shape} != {self.data.shape}"
            )

        topo: List[Tensor] = []
        visited = set()

        def visit(t: Tensor) -> None:
            stack = [(t, False)]
            while stack:
                node, processed = stack.pop()
                if processed:
                    topo.append(node)
                    continue
                if id(node) in visited:
                    continue
                visited.add(id(node))
                stack.append((node, True))
                for p in node._parents:
                    if id(p) not in visited:
                        stack.append((p, False))

        visit(self)

        grads = {id(self): gradient}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node.requires_grad and node.is_leaf:
                node.accumulate_grad(g)
            if node._backward_fn is None:
                continue
            parent_grads = node._backward_fn(g)
            for parent, pg in zip(node._parents, parent_grads):
                if pg is None:
                    continue
                if not (parent.requires_grad or parent._parents):
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pg
                else:
                    grads[key] = pg

    # -- operator sugar (delegates to functional) -------------------------------

    def __add__(self, other):
        from repro.nn import functional as F

        return F.add(self, _wrap(other))

    __radd__ = __add__

    def __sub__(self, other):
        from repro.nn import functional as F

        return F.sub(self, _wrap(other))

    def __mul__(self, other):
        from repro.nn import functional as F

        return F.mul(self, _wrap(other))

    __rmul__ = __mul__

    def __matmul__(self, other):
        from repro.nn import functional as F

        return F.matmul(self, _wrap(other))

    def __neg__(self):
        from repro.nn import functional as F

        return F.mul(self, Tensor(np.asarray(-1.0, dtype=self.dtype)))

    def sum(self):
        from repro.nn import functional as F

        return F.sum_all(self)

    def mean(self):
        from repro.nn import functional as F

        return F.mean_all(self)

    def relu(self):
        from repro.nn import functional as F

        return F.relu(self)


def _wrap(x) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(np.asarray(x))
