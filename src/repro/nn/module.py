"""Minimal module system (parameter registration + traversal)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A leaf tensor registered as trainable."""

    def __init__(self, data, name: str = ""):
        super().__init__(np.asarray(data), requires_grad=True, name=name)


class Module:
    """Base class: auto-registers Parameter/Module attributes.

    Provides the PyTorch-style surface the trainers rely on:
    ``parameters()``, ``named_parameters()``, ``zero_grad()``,
    ``train()/eval()``, ``state_dict()/load_state_dict()``.
    """

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, key, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[key] = value
        object.__setattr__(self, key, value)

    def register_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- traversal ---------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mod_name, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- modes -------------------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for mod in self._modules.values():
            mod.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- state -------------------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={missing} unexpected={unexpected}")
        for name, arr in state.items():
            if own[name].data.shape != arr.shape:
                raise ValueError(f"shape mismatch for {name}")
            own[name].data = arr.copy()

    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())
