"""Losses and metrics."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def masked_cross_entropy(
    logits: Tensor,
    labels: np.ndarray,
    mask: Optional[np.ndarray] = None,
    normalizer: Optional[float] = None,
) -> Tensor:
    """Negative log-likelihood over the masked rows.

    Full-batch vertex classification computes the loss on the training
    vertices only; the mask selects them.  ``normalizer`` overrides the
    denominator — data-parallel ranks divide by the *global* training
    count so that summing per-rank gradients (AllReduce) reproduces the
    single-socket mean-loss gradient.
    """
    labels = np.asarray(labels)
    if mask is None:
        rows = np.arange(labels.size)
    else:
        rows = np.flatnonzero(np.asarray(mask))
    if rows.size == 0:
        raise ValueError("loss mask selects no vertices")
    log_probs = F.log_softmax(logits)
    picked = F.pick(log_probs, rows, labels[rows])
    if normalizer is None:
        return -picked.mean()
    scale = Tensor(np.asarray(1.0 / float(normalizer), dtype=logits.dtype))
    return -(picked.sum() * scale)


def accuracy(
    logits: np.ndarray, labels: np.ndarray, mask: Optional[np.ndarray] = None
) -> float:
    """Fraction of masked rows whose argmax matches the label."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if mask is not None:
        rows = np.flatnonzero(np.asarray(mask))
        if rows.size == 0:
            return 0.0
        logits = logits[rows]
        labels = labels[rows]
    pred = logits.argmax(axis=1)
    return float((pred == labels).mean())
