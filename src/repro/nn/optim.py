"""Optimizers (SGD with momentum, Adam), with the paper's weight decay.

The paper trains with learning rates per Table 5 and weight decay
``5e-4`` everywhere; decoupled weight decay is applied as an L2 term on
the gradient (classic, matching PyTorch's SGD/Adam ``weight_decay``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over a parameter list."""

    def __init__(self, params: Sequence[Parameter], lr: float, weight_decay: float = 0.0):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def _grad(self, p: Parameter) -> np.ndarray:
        g = p.grad
        if g is None:
            return np.zeros_like(p.data)
        if self.weight_decay:
            g = g + self.weight_decay * p.data
        return g

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with optional momentum."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr, weight_decay)
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.params:
            g = self._grad(p)
            if self.momentum:
                v = self._velocity.get(id(p))
                v = self.momentum * v + g if v is not None else g
                self._velocity[id(p)] = v
                g = v
            p.data = p.data - self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr, weight_decay)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for p in self.params:
            g = self._grad(p)
            m = self._m.get(id(p))
            v = self._v.get(id(p))
            m = b1 * m + (1 - b1) * g if m is not None else (1 - b1) * g
            v = b2 * v + (1 - b2) * g * g if v is not None else (1 - b2) * g * g
            self._m[id(p)], self._v[id(p)] = m, v
            mhat = m / (1 - b1**self._t)
            vhat = v / (1 - b2**self._t)
            p.data = p.data - self.lr * mhat / (np.sqrt(vhat) + self.eps)
