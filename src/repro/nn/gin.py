"""Graph Isomorphism Network (Xu et al., the paper's reference [34]).

GIN is the maximally expressive message-passing architecture the paper
cites for GNN expressivity.  A layer is

    h' = MLP( (1 + eps) * h + sum_{u in N(v)} h_u )

— again the copylhs/sum aggregation primitive, followed by a 2-layer MLP.
``eps`` is a learnable scalar.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class GINConv(Module):
    """One GIN layer with a learnable self-weight epsilon."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        hidden_features: Optional[int] = None,
        activation: bool = True,
        rng: Optional[np.random.Generator] = None,
        kernel: str = "auto",
    ):
        super().__init__()
        hidden = hidden_features or out_features
        rng = rng or np.random.default_rng(0)
        self.mlp1 = Linear(in_features, hidden, rng=rng)
        self.mlp2 = Linear(hidden, out_features, rng=rng)
        from repro.kernels import validate_kernel

        self.eps = Parameter(np.zeros(1, dtype=np.float32), name="eps")
        self.activation = activation
        self.kernel = validate_kernel(kernel)

    def __call__(self, graph: CSRGraph, h: Tensor) -> Tensor:
        agg = F.spmm(graph, h, kernel=self.kernel)
        one_plus_eps = F.add(self.eps, Tensor(np.ones(1, dtype=np.float32)))
        combined = F.add(agg, F.mul(h, one_plus_eps))
        out = self.mlp2(F.relu(self.mlp1(combined)))
        if self.activation:
            out = F.relu(out)
        return out


class GIN(Module):
    """Stacked GIN for vertex classification."""

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        num_classes: int,
        num_layers: int = 2,
        seed: int = 0,
        kernel: str = "auto",
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden_features] * (num_layers - 1) + [num_classes]
        self.layers: List[GINConv] = []
        for i in range(num_layers):
            layer = GINConv(
                dims[i],
                dims[i + 1],
                activation=(i < num_layers - 1),
                rng=rng,
                kernel=kernel,
            )
            self.register_module(f"layer{i}", layer)
            self.layers.append(layer)

    def __call__(self, graph: CSRGraph, features: Tensor) -> Tensor:
        h = features
        for layer in self.layers:
            h = layer(graph, h)
        return h
