"""Builders converting edge lists / COO into :class:`CSRGraph`.

The conversion sorts edges destination-major (stable, so a deterministic
edge order is preserved within each row) and is the single entry point all
generators and partitioners use to materialize graphs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRGraph, INDEX_DTYPE


def coo_to_csr(
    src: np.ndarray,
    dst: np.ndarray,
    num_dst: Optional[int] = None,
    num_src: Optional[int] = None,
    edge_ids: Optional[np.ndarray] = None,
) -> CSRGraph:
    """Build a destination-major CSR from parallel ``src``/``dst`` arrays.

    Parameters
    ----------
    src, dst:
        Endpoint arrays of equal length; edge ``i`` goes ``src[i] -> dst[i]``.
    num_dst, num_src:
        Vertex-set sizes.  Inferred from the data when omitted.
    edge_ids:
        Optional per-edge identifiers carried through the sort.  Defaults to
        the input order ``arange(len(src))``.
    """
    src = np.asarray(src, dtype=INDEX_DTYPE).ravel()
    dst = np.asarray(dst, dtype=INDEX_DTYPE).ravel()
    if src.shape != dst.shape:
        raise ValueError(f"src/dst length mismatch: {src.shape} vs {dst.shape}")
    m = src.size
    if num_dst is None:
        num_dst = int(dst.max(initial=-1)) + 1
    if num_src is None:
        num_src = int(src.max(initial=-1)) + 1
    if m and (dst.min() < 0 or src.min() < 0):
        raise ValueError("vertex ids must be non-negative")
    if m and int(dst.max()) >= num_dst:
        raise ValueError("dst id out of range")
    if m and int(src.max()) >= num_src:
        raise ValueError("src id out of range")
    if edge_ids is None:
        edge_ids = np.arange(m, dtype=INDEX_DTYPE)
    else:
        edge_ids = np.asarray(edge_ids, dtype=INDEX_DTYPE).ravel()
        if edge_ids.size != m:
            raise ValueError("edge_ids must align with src/dst")

    order = np.argsort(dst, kind="stable")
    counts = np.bincount(dst, minlength=num_dst).astype(INDEX_DTYPE)
    indptr = np.zeros(num_dst + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(
        indptr=indptr,
        indices=src[order],
        edge_ids=edge_ids[order],
        num_src=num_src,
    )


def from_edge_list(
    edges: Iterable[Tuple[int, int]],
    num_vertices: Optional[int] = None,
) -> CSRGraph:
    """Build a square CSR graph from an iterable of ``(src, dst)`` pairs."""
    pairs = np.asarray(list(edges), dtype=INDEX_DTYPE)
    if pairs.size == 0:
        n = num_vertices or 0
        return CSRGraph(
            indptr=np.zeros(n + 1, dtype=INDEX_DTYPE),
            indices=np.zeros(0, dtype=INDEX_DTYPE),
            num_src=n,
        )
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError("edges must be (src, dst) pairs")
    src, dst = pairs[:, 0], pairs[:, 1]
    if num_vertices is None:
        num_vertices = int(pairs.max()) + 1
    return coo_to_csr(src, dst, num_dst=num_vertices, num_src=num_vertices)


def dedupe_edges(src: np.ndarray, dst: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Remove duplicate (src, dst) pairs, preserving first occurrence order."""
    src = np.asarray(src, dtype=INDEX_DTYPE)
    dst = np.asarray(dst, dtype=INDEX_DTYPE)
    if src.size == 0:
        return src, dst
    n = max(int(src.max()), int(dst.max())) + 1
    keys = src.astype(np.int64) * n + dst
    _, first = np.unique(keys, return_index=True)
    first.sort()
    return src[first], dst[first]


def remove_self_loops(
    src: np.ndarray, dst: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Drop edges with identical endpoints."""
    src = np.asarray(src, dtype=INDEX_DTYPE)
    dst = np.asarray(dst, dtype=INDEX_DTYPE)
    keep = src != dst
    return src[keep], dst[keep]
