"""Benchmark dataset stand-ins.

The paper evaluates on five datasets (Table 2).  We cannot ship Reddit or
the OGB graphs (no network access, and OGBN-Papers alone is 1.4 TB in
training footprint), so each dataset is replaced by a *structural stand-in*
generated to sit in the same regime that drives the paper's phenomena:

=================  ==========================================================
Dataset            Structural signature we match (and why it matters)
=================  ==========================================================
``reddit``         Dense power-law (paper density 2e-3, avg deg 492).  Drives
                   the cache-blocking sweet spot (Table 3) and the *high*
                   replication factor under vertex-cut (Table 4).
``ogbn-products``  Sparse power-law (avg deg ~50).  Flat cache reuse ~2,
                   scheduling-dominated single-socket gains (Fig. 4),
                   mid-range replication factor.
``proteins``       Strong planted clusters (protein families).  Lowest
                   replication factor, near-linear scaling (Fig. 5).  The
                   paper randomizes its features; so do we.
``ogbn-papers``    Largest, sparse power-law (avg deg ~15).  Exercises the
                   128-socket scaling path and the memory model (Table 6).
``am``             Small heterogeneous museum graph with typed edges for the
                   R-GCN workload of Fig. 2(d).
=================  ==========================================================

Every stand-in is scaled by ``scale`` (default targets quick CI-size runs)
and carries SBM-planted labels plus community-correlated features so that
accuracy experiments (Table 5) measure real learning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.graph.builders import coo_to_csr, dedupe_edges
from repro.graph.csr import CSRGraph, INDEX_DTYPE
from repro.graph.generators import (
    community_features,
    powerlaw_cluster_graph,
    random_features,
    rmat_graph,
    sbm_graph,
    sbm_labels,
)
from repro.graph.utils import split_train_val_test, to_bidirected


@dataclass(frozen=True)
class PaperDatasetStats:
    """Row of the paper's Table 2 (for reporting side-by-side)."""

    name: str
    num_vertices: int
    num_edges: int
    num_features: int
    num_classes: int


PAPER_DATASET_STATS: Dict[str, PaperDatasetStats] = {
    "am": PaperDatasetStats("AM", 881_680, 5_668_682, 1, 11),
    "reddit": PaperDatasetStats("Reddit", 232_965, 114_615_892, 602, 41),
    "ogbn-products": PaperDatasetStats(
        "OGBN-Products", 2_449_029, 123_718_280, 100, 47
    ),
    "proteins": PaperDatasetStats("Proteins", 8_745_542, 1_309_240_502, 128, 256),
    "ogbn-papers": PaperDatasetStats(
        "OGBN-Papers", 111_059_956, 1_615_685_872, 128, 172
    ),
}


@dataclass
class Dataset:
    """A loaded (stand-in) dataset ready for training.

    ``relations`` is populated only for heterogeneous datasets (AM): it maps
    relation name -> CSRGraph over the same vertex set, and ``graph`` is the
    union of all relations.
    """

    name: str
    graph: CSRGraph
    features: np.ndarray
    labels: np.ndarray
    num_classes: int
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray
    paper_stats: Optional[PaperDatasetStats] = None
    relations: Dict[str, CSRGraph] = field(default_factory=dict)

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def feature_dim(self) -> int:
        return int(self.features.shape[1])

    def summary(self) -> str:
        return (
            f"{self.name}: |V|={self.num_vertices} |E|={self.num_edges} "
            f"d={self.feature_dim} classes={self.num_classes} "
            f"avg_deg={self.num_edges / max(self.num_vertices, 1):.1f}"
        )


def _finalize(
    name: str,
    graph: CSRGraph,
    labels: np.ndarray,
    num_classes: int,
    feature_dim: int,
    seed: int,
    random_feats: bool = False,
    relations: Optional[Dict[str, CSRGraph]] = None,
) -> Dataset:
    if random_feats:
        feats = random_features(graph.num_vertices, feature_dim, seed=seed + 7)
    else:
        feats = community_features(
            labels, feature_dim, signal=1.5, noise=1.0, seed=seed + 7
        )
    train, val, test = split_train_val_test(graph.num_vertices, seed=seed + 11)
    return Dataset(
        name=name,
        graph=graph,
        features=feats,
        labels=np.asarray(labels, dtype=INDEX_DTYPE),
        num_classes=num_classes,
        train_mask=train,
        val_mask=val,
        test_mask=test,
        paper_stats=PAPER_DATASET_STATS.get(name),
        relations=relations or {},
    )


def make_reddit_sim(scale: float = 1.0, seed: int = 0) -> Dataset:
    """Dense power-law stand-in for Reddit.

    Base size 8192 vertices at avg degree ~96 gives density ~1.2e-2 — in the
    "dense" regime where cache blocking has a pronounced sweet spot, like
    Reddit's 2e-3 vs Products' 2e-5 (paper Table 3).
    """
    n = max(int(8192 * scale), 256)
    num_classes = 16
    sizes = _block_sizes(n, num_classes)
    # dense community graph + heavy global hub structure
    g_comm = sbm_graph(sizes, p_in=min(0.15, 600.0 / n), p_out=4.0 / n, seed=seed)
    g_hub = rmat_graph(
        max(int(np.ceil(np.log2(n))), 2), edge_factor=48.0, a=0.65, seed=seed + 1
    )
    g = _union(g_comm, g_hub, n)
    g = to_bidirected(g)
    labels = sbm_labels(sizes)
    return _finalize("reddit", g, labels, num_classes, feature_dim=64, seed=seed)


def make_products_sim(scale: float = 1.0, seed: int = 0) -> Dataset:
    """Sparse power-law stand-in for OGBN-Products (avg deg ~25 here vs 50)."""
    n = max(int(16384 * scale), 512)
    num_classes = 24
    sizes = _block_sizes(n, num_classes)
    g_comm = sbm_graph(sizes, p_in=min(0.05, 180.0 / n), p_out=1.0 / n, seed=seed)
    g_hub = rmat_graph(
        max(int(np.ceil(np.log2(n))), 2), edge_factor=10.0, a=0.6, seed=seed + 1
    )
    g = _union(g_comm, g_hub, n)
    g = to_bidirected(g)
    labels = sbm_labels(sizes)
    return _finalize("ogbn-products", g, labels, num_classes, feature_dim=50, seed=seed)


def make_proteins_sim(scale: float = 1.0, seed: int = 0) -> Dataset:
    """Clustered stand-in for Proteins.

    Strong intra-community structure (intra_fraction=0.95) so Libra finds
    near-clean cuts, reproducing the paper's lowest replication factor
    (Table 4) and near-linear scaling (Fig. 5).  Features are random, as in
    the paper.
    """
    n = max(int(20000 * scale), 512)
    num_blocks = 64
    g = powerlaw_cluster_graph(
        n, num_blocks=num_blocks, avg_degree=30.0, intra_fraction=0.95, seed=seed
    )
    g = to_bidirected(g)
    sizes = _block_sizes(n, num_blocks)
    labels = sbm_labels(sizes)
    ds = _finalize(
        "proteins", g, labels, num_blocks, feature_dim=64, seed=seed, random_feats=True
    )
    return ds


def make_papers_sim(scale: float = 1.0, seed: int = 0) -> Dataset:
    """Sparse citation-style stand-in for OGBN-Papers (avg deg ~15)."""
    n = max(int(32768 * scale), 512)
    num_classes = 32
    sizes = _block_sizes(n, num_classes)
    g_comm = sbm_graph(sizes, p_in=min(0.02, 60.0 / n), p_out=0.5 / n, seed=seed)
    g_hub = rmat_graph(
        max(int(np.ceil(np.log2(n))), 2), edge_factor=6.0, a=0.62, seed=seed + 1
    )
    g = _union(g_comm, g_hub, n)
    labels = sbm_labels(sizes)
    return _finalize("ogbn-papers", g, labels, num_classes, feature_dim=64, seed=seed)


AM_RELATIONS = ("material", "creator", "relatedTo", "partOf", "exhibits")


def make_am_sim(scale: float = 1.0, seed: int = 0) -> Dataset:
    """Heterogeneous stand-in for the Amsterdam Museum graph.

    Five relation types over one vertex set; the homogeneous ``graph`` field
    is their union.  The paper assigns vertex-id-derived features (feature
    dim 1); we keep a small feature dim and SBM labels for trainability.
    """
    n = max(int(4096 * scale), 256)
    num_classes = 11
    sizes = _block_sizes(n, num_classes)
    labels = sbm_labels(sizes)
    rng = np.random.default_rng(seed)
    relations: Dict[str, CSRGraph] = {}
    all_src, all_dst = [], []
    for k, rel in enumerate(AM_RELATIONS):
        g_rel = sbm_graph(
            sizes, p_in=min(0.03, 30.0 / n), p_out=0.8 / n, seed=seed + 13 * (k + 1)
        )
        relations[rel] = g_rel
        s, d, _ = g_rel.to_coo()
        all_src.append(s)
        all_dst.append(d)
    src = np.concatenate(all_src)
    dst = np.concatenate(all_dst)
    src, dst = dedupe_edges(src, dst)
    union = coo_to_csr(src, dst, num_dst=n, num_src=n)
    ds = _finalize(
        "am", union, labels, num_classes, feature_dim=16, seed=seed, relations=relations
    )
    return ds


def _block_sizes(n: int, k: int) -> list:
    base = n // k
    sizes = [base] * (k - 1)
    sizes.append(n - base * (k - 1))
    return sizes


def _union(a: CSRGraph, b: CSRGraph, n: int) -> CSRGraph:
    asrc, adst, _ = a.to_coo()
    bsrc, bdst, _ = b.to_coo()
    keep = (bsrc < n) & (bdst < n)
    src = np.concatenate([asrc, bsrc[keep]])
    dst = np.concatenate([adst, bdst[keep]])
    src, dst = dedupe_edges(src, dst)
    return coo_to_csr(src, dst, num_dst=n, num_src=n)


DATASET_REGISTRY: Dict[str, Callable[..., Dataset]] = {
    "reddit": make_reddit_sim,
    "ogbn-products": make_products_sim,
    "proteins": make_proteins_sim,
    "ogbn-papers": make_papers_sim,
    "am": make_am_sim,
}


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> Dataset:
    """Load a stand-in dataset by paper name.

    ``scale`` multiplies the base vertex count (1.0 = CI-friendly default;
    benchmarks use larger scales).
    """
    key = name.lower()
    if key not in DATASET_REGISTRY:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_REGISTRY)}"
        )
    return DATASET_REGISTRY[key](scale=scale, seed=seed)
