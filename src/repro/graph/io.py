"""Persistence for graphs and datasets.

Graph structure (plus aligned extras) round-trips through compressed
``.npz``; feature matrices additionally persist as an *on-disk feature
layout* — a chunk-written raw binary plus JSON manifest that the
feature store can map read-only without loading it
(:mod:`repro.featurestore.storage`).
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph, validate_graph

_FORMAT_VERSION = 1


def save_graph(path: str, g: CSRGraph, **extra_arrays: np.ndarray) -> None:
    """Save a graph (plus any aligned arrays, e.g. features/labels) to npz.

    The structure is validated *before* anything is written — a graph
    corrupted in memory must fail here, not at the next ``load_graph``.
    Extra arrays round-trip with their exact dtypes (bool masks, float32
    features, ...); ``np.savez`` preserves them.
    """
    validate_graph(g)
    payload = {
        "format_version": np.asarray(_FORMAT_VERSION),
        "indptr": g.indptr,
        "indices": g.indices,
        "edge_ids": g.edge_ids,
        "num_src": np.asarray(g.num_src),
    }
    for key, arr in extra_arrays.items():
        if key in payload:
            raise ValueError(f"reserved array name: {key}")
        payload[f"extra_{key}"] = np.asarray(arr)
    np.savez_compressed(path, **payload)


def load_graph(path: str):
    """Load a graph saved by :func:`save_graph`.

    Returns ``(graph, extras)`` where ``extras`` is a dict of the additional
    arrays stored alongside the structure.
    """
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported graph format version {version}")
        g = CSRGraph(
            indptr=data["indptr"],
            indices=data["indices"],
            edge_ids=data["edge_ids"],
            num_src=int(data["num_src"]),
        )
        validate_graph(g)
        extras = {
            key[len("extra_") :]: data[key]
            for key in data.files
            if key.startswith("extra_")
        }
    return g, extras


def save_feature_layout(
    dirpath: str, features: np.ndarray, chunk_rows: Optional[int] = None
) -> dict:
    """Persist ``features`` as a mappable on-disk layout under ``dirpath``.

    Thin re-export of
    :func:`repro.featurestore.storage.write_feature_layout` so dataset
    persistence lives in one module; ``repro.graph`` may depend on
    ``repro.featurestore`` (never the reverse).  Returns the manifest.
    """
    from repro.featurestore import storage

    if chunk_rows is None:
        return storage.write_feature_layout(dirpath, features)
    return storage.write_feature_layout(dirpath, features, chunk_rows=chunk_rows)


def load_feature_layout(dirpath: str) -> Tuple[np.ndarray, dict]:
    """Open a layout written by :func:`save_feature_layout`.

    Returns ``(features, manifest)`` where ``features`` is a *read-only*
    zero-copy view (an ``np.memmap`` for non-empty layouts).  Manifest
    mismatches — dtype, shape, endianness, truncation — raise
    :class:`~repro.featurestore.storage.FeatureLayoutError`.
    """
    from repro.featurestore import storage

    return storage.open_feature_layout(dirpath)
