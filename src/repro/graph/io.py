"""Persistence for graphs and datasets (compressed ``.npz``)."""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph, validate_graph

_FORMAT_VERSION = 1


def save_graph(path: str, g: CSRGraph, **extra_arrays: np.ndarray) -> None:
    """Save a graph (plus any aligned arrays, e.g. features/labels) to npz.

    The structure is validated *before* anything is written — a graph
    corrupted in memory must fail here, not at the next ``load_graph``.
    Extra arrays round-trip with their exact dtypes (bool masks, float32
    features, ...); ``np.savez`` preserves them.
    """
    validate_graph(g)
    payload = {
        "format_version": np.asarray(_FORMAT_VERSION),
        "indptr": g.indptr,
        "indices": g.indices,
        "edge_ids": g.edge_ids,
        "num_src": np.asarray(g.num_src),
    }
    for key, arr in extra_arrays.items():
        if key in payload:
            raise ValueError(f"reserved array name: {key}")
        payload[f"extra_{key}"] = np.asarray(arr)
    np.savez_compressed(path, **payload)


def load_graph(path: str):
    """Load a graph saved by :func:`save_graph`.

    Returns ``(graph, extras)`` where ``extras`` is a dict of the additional
    arrays stored alongside the structure.
    """
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported graph format version {version}")
        g = CSRGraph(
            indptr=data["indptr"],
            indices=data["indices"],
            edge_ids=data["edge_ids"],
            num_src=int(data["num_src"]),
        )
        validate_graph(g)
        extras = {
            key[len("extra_") :]: data[key]
            for key in data.files
            if key.startswith("extra_")
        }
    return g, extras
