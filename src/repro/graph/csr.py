"""Immutable CSR graph container.

The aggregation primitive (paper Alg. 1) is defined over the adjacency
matrix ``A`` in CSR format where ``A[v]`` lists the *in*-neighbours of a
destination vertex ``v`` (DGL "pulls" messages from sources into
destinations).  We therefore store the graph destination-major: row ``v``
of the CSR holds the source vertices ``u`` of all edges ``u -> v``.

Edge identifiers are preserved alongside the column indices so that edge
feature matrices (``f_E`` in the paper) can be gathered per edge in the
same pass, exactly as DGL does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

INDEX_DTYPE = np.int64


def _as_index_array(a, name: str) -> np.ndarray:
    arr = np.asarray(a, dtype=INDEX_DTYPE)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


@dataclass(frozen=True)
class CSRGraph:
    """Directed graph in destination-major CSR form.

    Attributes
    ----------
    indptr:
        ``(num_vertices + 1,)`` row pointers; row ``v`` spans
        ``indptr[v]:indptr[v + 1]``.
    indices:
        ``(num_edges,)`` source vertex of each stored edge.
    edge_ids:
        ``(num_edges,)`` identifier of each stored edge, indexing into the
        edge feature matrix.  Defaults to ``arange(num_edges)``.
    num_src:
        Number of source vertices.  For ordinary square graphs this equals
        ``num_vertices``; partitioned block CSRs (paper Alg. 2 line 2) may
        be rectangular.
    """

    indptr: np.ndarray
    indices: np.ndarray
    edge_ids: np.ndarray = field(default=None)  # type: ignore[assignment]
    num_src: int = -1

    def __post_init__(self) -> None:
        indptr = _as_index_array(self.indptr, "indptr")
        indices = _as_index_array(self.indices, "indices")
        if indptr.size == 0:
            raise ValueError("indptr must have at least one entry")
        if indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indptr[-1] != indices.size:
            raise ValueError(
                f"indptr[-1]={indptr[-1]} does not match num_edges={indices.size}"
            )
        if self.edge_ids is None:
            eids = np.arange(indices.size, dtype=INDEX_DTYPE)
        else:
            eids = _as_index_array(self.edge_ids, "edge_ids")
            if eids.size != indices.size:
                raise ValueError("edge_ids must align with indices")
        num_src = self.num_src
        if num_src < 0:
            num_src = int(indices.max(initial=-1)) + 1
            num_src = max(num_src, indptr.size - 1)
        elif indices.size and int(indices.max()) >= num_src:
            raise ValueError("indices reference a source >= num_src")
        for name, val in (("indptr", indptr), ("indices", indices), ("edge_ids", eids)):
            val.setflags(write=False)
            object.__setattr__(self, name, val)
        object.__setattr__(self, "num_src", num_src)

    # -- basic properties ---------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of destination vertices (rows)."""
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        return self.indices.size

    @property
    def is_square(self) -> bool:
        return self.num_src == self.num_vertices

    @property
    def has_contiguous_edge_ids(self) -> bool:
        """True when ``edge_ids`` is exactly ``arange(num_edges)``.

        The common case for freshly built graphs; the vectorized kernel
        then reads edge-feature rows as a zero-copy slice instead of a
        gather.  Computed once and cached (arrays are immutable).
        """
        cached = getattr(self, "_trivial_eids", None)
        if cached is None:
            eids = self.edge_ids
            cached = eids.size == 0 or (
                eids[0] == 0
                and eids[-1] == eids.size - 1
                and bool(np.all(np.diff(eids) == 1))
            )
            object.__setattr__(self, "_trivial_eids", bool(cached))
        return cached

    def in_degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def in_degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Source vertices with an edge into ``v`` (the paper's ``A[v]``)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def edge_ids_of(self, v: int) -> np.ndarray:
        return self.edge_ids[self.indptr[v] : self.indptr[v + 1]]

    def iter_rows(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(v, neighbors, edge_ids)`` per destination vertex."""
        for v in range(self.num_vertices):
            lo, hi = self.indptr[v], self.indptr[v + 1]
            yield v, self.indices[lo:hi], self.edge_ids[lo:hi]

    # -- conversions ----------------------------------------------------------

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(src, dst, edge_ids)`` arrays of all edges."""
        dst = np.repeat(
            np.arange(self.num_vertices, dtype=INDEX_DTYPE), self.in_degrees()
        )
        return self.indices.copy(), dst, self.edge_ids.copy()

    def to_dense(self) -> np.ndarray:
        """Dense adjacency (dst x src) with multiplicity counts.

        For testing only; O(V^2) memory.
        """
        dense = np.zeros((self.num_vertices, self.num_src), dtype=np.float64)
        src, dst, _ = self.to_coo()
        np.add.at(dense, (dst, src), 1.0)
        return dense

    def to_scipy(self):
        """Return the adjacency as ``scipy.sparse.csr_matrix`` (dst x src)."""
        import scipy.sparse as sp

        data = np.ones(self.num_edges, dtype=np.float64)
        return sp.csr_matrix(
            (data, self.indices, self.indptr), shape=(self.num_vertices, self.num_src)
        )

    def reverse(self) -> "CSRGraph":
        """Graph with every edge direction flipped (source-major view).

        Used by the autograd backward of SpMM: gradients flow along the
        transposed adjacency.
        """
        src, dst, eid = self.to_coo()
        from repro.graph.builders import coo_to_csr

        return coo_to_csr(
            dst, src, num_dst=self.num_src, num_src=self.num_vertices, edge_ids=eid
        )

    # -- slicing --------------------------------------------------------------

    def source_block(self, lo: int, hi: int) -> "CSRGraph":
        """CSR containing only edges whose *source* lies in ``[lo, hi)``.

        This is the per-block CSR construction of paper Alg. 2 line 2: the
        row set (destinations) is unchanged; only the edges from the given
        source range are retained.  Column indices stay in the global source
        id space so feature gathers need no translation.
        """
        mask = (self.indices >= lo) & (self.indices < hi)
        counts = np.zeros(self.num_vertices, dtype=INDEX_DTYPE)
        dst = np.repeat(
            np.arange(self.num_vertices, dtype=INDEX_DTYPE), self.in_degrees()
        )
        np.add.at(counts, dst[mask], 1)
        indptr = np.zeros(self.num_vertices + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        return CSRGraph(
            indptr=indptr,
            indices=self.indices[mask],
            edge_ids=self.edge_ids[mask],
            num_src=self.num_src,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(num_vertices={self.num_vertices}, num_src={self.num_src}, "
            f"num_edges={self.num_edges})"
        )


def validate_graph(g: CSRGraph) -> None:
    """Raise ``ValueError`` on structural inconsistencies.

    The :class:`CSRGraph` constructor already checks shape invariants; this
    re-checks them for graphs deserialized from disk.
    """
    CSRGraph(
        indptr=np.asarray(g.indptr),
        indices=np.asarray(g.indices),
        edge_ids=np.asarray(g.edge_ids),
        num_src=g.num_src,
    )
