"""Graph substrate for DistGNN.

This package provides the graph data structures and workloads that every
other layer of the reproduction builds on:

- :mod:`repro.graph.csr` — the immutable :class:`CSRGraph` used by the
  aggregation kernels (the role DGL's ``CSRMatrix`` plays in the paper).
- :mod:`repro.graph.builders` — COO accumulation and conversion helpers.
- :mod:`repro.graph.generators` — synthetic graph generators (R-MAT,
  stochastic block model, preferential attachment) used to synthesize
  structural stand-ins for the paper's datasets.
- :mod:`repro.graph.datasets` — the five benchmark stand-ins (Reddit,
  OGBN-Products, OGBN-Papers, Proteins, AM) with matched structural
  signatures plus planted labels for accuracy experiments.
- :mod:`repro.graph.io` — ``.npz`` persistence.
- :mod:`repro.graph.utils` — degrees, bidirection, subgraphs, density.

:class:`~repro.dyngraph.delta.DynamicGraph` (re-exported here) is the
mutable counterpart: a frozen CSR base plus a streaming edge delta and
tombstones, compacting back to a bit-identical :class:`CSRGraph`.
"""

from repro.graph.builders import coo_to_csr, from_edge_list
from repro.graph.csr import CSRGraph
from repro.graph.datasets import (
    DATASET_REGISTRY,
    Dataset,
    PAPER_DATASET_STATS,
    PaperDatasetStats,
    load_dataset,
)
from repro.graph.generators import (
    powerlaw_cluster_graph,
    preferential_attachment_graph,
    rmat_graph,
    sbm_graph,
)
from repro.graph.io import (
    load_feature_layout,
    load_graph,
    save_feature_layout,
    save_graph,
)
from repro.graph.utils import (
    average_degree,
    density,
    in_degrees,
    out_degrees,
    to_bidirected,
)

# last: repro.dyngraph builds on the modules imported above
from repro.dyngraph.delta import DynamicGraph

__all__ = [
    "CSRGraph",
    "DynamicGraph",
    "coo_to_csr",
    "from_edge_list",
    "rmat_graph",
    "sbm_graph",
    "preferential_attachment_graph",
    "powerlaw_cluster_graph",
    "Dataset",
    "PaperDatasetStats",
    "PAPER_DATASET_STATS",
    "DATASET_REGISTRY",
    "load_dataset",
    "save_graph",
    "load_graph",
    "save_feature_layout",
    "load_feature_layout",
    "in_degrees",
    "out_degrees",
    "average_degree",
    "density",
    "to_bidirected",
]
