"""Synthetic graph generators.

The paper's datasets occupy distinct structural regimes (Section 6):

- *Reddit*: dense (density 2e-3), heavy-tailed, average degree ~492.
- *OGBN-Products / OGBN-Papers*: sparse power-law, average degree ~50/~15.
- *Proteins*: strong natural clusters (protein families), which is why
  Libra achieves a very low replication factor on it (Table 4).

We provide the generators needed to synthesize graphs in each regime:
R-MAT (Kronecker-style power law used by Graph500), a stochastic block
model (planted communities, used for Proteins-like clustering *and* to
give datasets learnable labels), preferential attachment, and a power-law
cluster hybrid.  All generators are deterministic given ``seed``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.graph.builders import coo_to_csr, dedupe_edges, remove_self_loops
from repro.graph.csr import CSRGraph, INDEX_DTYPE


def rmat_graph(
    scale: int,
    edge_factor: float,
    a: float = 0.57,
    b: Optional[float] = None,
    c: Optional[float] = None,
    seed: int = 0,
    dedupe: bool = True,
    self_loops: bool = False,
) -> CSRGraph:
    """R-MAT / Kronecker power-law generator (Graph500 parameters by default).

    Produces a directed graph with ``2**scale`` vertices and approximately
    ``edge_factor * 2**scale`` edges.  Each edge picks one of the four
    adjacency-matrix quadrants per bit with probabilities ``(a, b, c, d)``;
    skewed quadrant probabilities yield a power-law degree distribution.

    Parameters
    ----------
    scale:
        log2 of the vertex count.
    edge_factor:
        Average out-degree before dedup.
    a, b, c:
        Quadrant probabilities (``d = 1 - a - b - c``).  When ``b``/``c``
        are omitted they default to the Graph500 proportions rescaled to
        the chosen ``a``: ``b = c = 0.44 * (1 - a)``.
    dedupe:
        Remove duplicate edges (duplicates concentrate on hubs).
    self_loops:
        Keep self loops when True.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if b is None:
        b = 0.44 * (1.0 - a)
    if c is None:
        c = 0.44 * (1.0 - a)
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("quadrant probabilities must sum to <= 1")
    n = 1 << scale
    m = int(round(edge_factor * n))
    rng = np.random.default_rng(seed)

    src = np.zeros(m, dtype=INDEX_DTYPE)
    dst = np.zeros(m, dtype=INDEX_DTYPE)
    # Per-bit quadrant draws, vectorized across all edges at once.
    for bit in range(scale):
        r = rng.random(m)
        # Quadrants: [a | b ; c | d] -> (src_bit, dst_bit)
        src_bit = (r >= a + b).astype(INDEX_DTYPE)  # rows c,d set the src bit
        dst_bit = ((r >= a) & (r < a + b) | (r >= a + b + c)).astype(INDEX_DTYPE)
        src |= src_bit << bit
        dst |= dst_bit << bit

    if not self_loops:
        src, dst = remove_self_loops(src, dst)
    if dedupe:
        src, dst = dedupe_edges(src, dst)
    return coo_to_csr(src, dst, num_dst=n, num_src=n)


def sbm_graph(
    block_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    seed: int = 0,
    directed: bool = True,
) -> CSRGraph:
    """Stochastic block model with planted communities.

    Samples each intra-block edge with probability ``p_in`` and each
    inter-block edge with probability ``p_out``.  Sampling is done with the
    binomial-count + uniform-placement trick so the cost is O(edges), not
    O(n^2).

    Returns a directed graph; when ``directed=False`` each sampled edge is
    emitted in both directions (the paper's datasets store undirected edges
    as directed pairs, Table 2).
    """
    block_sizes = [int(s) for s in block_sizes]
    if any(s <= 0 for s in block_sizes):
        raise ValueError("block sizes must be positive")
    for p in (p_in, p_out):
        if not 0.0 <= p <= 1.0:
            raise ValueError("probabilities must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    offsets = np.concatenate([[0], np.cumsum(block_sizes)]).astype(INDEX_DTYPE)
    n = int(offsets[-1])
    srcs, dsts = [], []
    k = len(block_sizes)
    for i in range(k):
        for j in range(k):
            p = p_in if i == j else p_out
            if p == 0.0:
                continue
            ni, nj = block_sizes[i], block_sizes[j]
            cells = ni * nj
            cnt = rng.binomial(cells, p)
            if cnt == 0:
                continue
            flat = rng.choice(cells, size=cnt, replace=False) if cells < 4 * cnt else (
                np.unique(rng.integers(0, cells, size=int(cnt * 1.1) + 8))[:cnt]
            )
            s = offsets[i] + flat // nj
            t = offsets[j] + flat % nj
            srcs.append(s)
            dsts.append(t)
    if srcs:
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
    else:
        src = np.zeros(0, dtype=INDEX_DTYPE)
        dst = np.zeros(0, dtype=INDEX_DTYPE)
    src, dst = remove_self_loops(src, dst)
    if not directed:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        src, dst = dedupe_edges(src, dst)
    return coo_to_csr(src, dst, num_dst=n, num_src=n)


def sbm_labels(block_sizes: Sequence[int]) -> np.ndarray:
    """Ground-truth community label per vertex for an SBM graph."""
    return np.repeat(
        np.arange(len(block_sizes), dtype=INDEX_DTYPE), np.asarray(block_sizes)
    )


def preferential_attachment_graph(
    num_vertices: int, m: int, seed: int = 0
) -> CSRGraph:
    """Barabási–Albert preferential attachment (undirected, emitted both ways).

    Each new vertex attaches to ``m`` existing vertices chosen proportionally
    to degree, using the repeated-endpoints sampling trick (sampling uniformly
    from the flat edge-endpoint list is exactly degree-proportional).
    """
    if m < 1 or num_vertices <= m:
        raise ValueError("need num_vertices > m >= 1")
    rng = np.random.default_rng(seed)
    # endpoint pool: every endpoint appearance = one unit of degree
    targets = list(range(m))
    pool: list = []
    src_l: list = []
    dst_l: list = []
    for v in range(m, num_vertices):
        chosen = np.unique(np.asarray(targets, dtype=INDEX_DTYPE))
        for t in chosen:
            src_l.append(v)
            dst_l.append(int(t))
        pool.extend(chosen.tolist())
        pool.extend([v] * len(chosen))
        # degree-proportional sample (with replacement, deduped on use)
        idx = rng.integers(0, len(pool), size=m)
        targets = [pool[i] for i in idx]
    src = np.asarray(src_l, dtype=INDEX_DTYPE)
    dst = np.asarray(dst_l, dtype=INDEX_DTYPE)
    src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    src, dst = dedupe_edges(src, dst)
    return coo_to_csr(src, dst, num_dst=num_vertices, num_src=num_vertices)


def powerlaw_cluster_graph(
    num_vertices: int,
    num_blocks: int,
    avg_degree: float,
    intra_fraction: float = 0.8,
    rmat_skew: float = 0.57,
    seed: int = 0,
) -> CSRGraph:
    """Hybrid generator: power-law degrees *and* planted block structure.

    Mixes an R-MAT-style skewed graph (global hubs) with an SBM (local
    clusters).  ``intra_fraction`` of the target edges are intra-block; the
    rest follow the skewed global distribution.  This matches graphs like
    Proteins that are simultaneously heavy-tailed and highly clusterable.
    """
    if not 0.0 <= intra_fraction <= 1.0:
        raise ValueError("intra_fraction must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    n = num_vertices
    block = max(1, n // num_blocks)
    sizes = [block] * (num_blocks - 1) + [n - block * (num_blocks - 1)]
    target_edges = int(avg_degree * n)
    intra_edges = int(target_edges * intra_fraction)
    # intra-block probability chosen to hit the intra edge budget
    cells = sum(s * s for s in sizes)
    p_in = min(1.0, intra_edges / max(cells, 1))
    g_local = sbm_graph(sizes, p_in=p_in, p_out=0.0, seed=seed, directed=True)

    global_edges = target_edges - g_local.num_edges
    scale = max(1, int(np.ceil(np.log2(max(n, 2)))))
    g_global = rmat_graph(
        scale,
        edge_factor=max(global_edges, 1) / (1 << scale),
        a=rmat_skew,
        seed=seed + 1,
    )
    gsrc, gdst, _ = g_global.to_coo()
    keep = (gsrc < n) & (gdst < n)
    lsrc, ldst, _ = g_local.to_coo()
    src = np.concatenate([lsrc, gsrc[keep]])
    dst = np.concatenate([ldst, gdst[keep]])
    src, dst = dedupe_edges(src, dst)
    return coo_to_csr(src, dst, num_dst=n, num_src=n)


def random_features(
    num_vertices: int, dim: int, seed: int = 0, dtype=np.float32
) -> np.ndarray:
    """I.i.d. normal vertex features (the paper randomizes Proteins features)."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((num_vertices, dim)).astype(dtype)


def community_features(
    labels: np.ndarray,
    dim: int,
    signal: float = 1.0,
    noise: float = 1.0,
    seed: int = 0,
    dtype=np.float32,
) -> np.ndarray:
    """Features = class centroid * signal + i.i.d. noise.

    Gives GraphSAGE a learnable signal so the accuracy experiments
    (paper Table 5) are meaningful on synthetic data.
    """
    labels = np.asarray(labels)
    rng = np.random.default_rng(seed)
    num_classes = int(labels.max()) + 1
    centroids = rng.standard_normal((num_classes, dim))
    feats = signal * centroids[labels] + noise * rng.standard_normal(
        (labels.size, dim)
    )
    return feats.astype(dtype)
