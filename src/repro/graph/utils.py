"""Structural graph utilities used across the reproduction."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.builders import coo_to_csr, dedupe_edges
from repro.graph.csr import CSRGraph, INDEX_DTYPE


def in_degrees(g: CSRGraph) -> np.ndarray:
    """In-degree per destination vertex."""
    return g.in_degrees()


def out_degrees(g: CSRGraph) -> np.ndarray:
    """Out-degree per source vertex."""
    return np.bincount(g.indices, minlength=g.num_src).astype(INDEX_DTYPE)


def average_degree(g: CSRGraph) -> float:
    """Average in-degree (paper's "Avg. deg." in Tables 7/8)."""
    if g.num_vertices == 0:
        return 0.0
    return g.num_edges / g.num_vertices


def density(g: CSRGraph) -> float:
    """Nonzeros / total adjacency cells (paper Table 3 definition)."""
    cells = g.num_vertices * g.num_src
    return g.num_edges / cells if cells else 0.0


def to_bidirected(g: CSRGraph) -> CSRGraph:
    """Emit each edge in both directions and dedupe.

    Mirrors the paper's Table 2 convention: each undirected edge of Reddit,
    OGBN-Products and Proteins is stored as two directed edges.
    """
    src, dst, _ = g.to_coo()
    bsrc = np.concatenate([src, dst])
    bdst = np.concatenate([dst, src])
    bsrc, bdst = dedupe_edges(bsrc, bdst)
    n = max(g.num_vertices, g.num_src)
    return coo_to_csr(bsrc, bdst, num_dst=n, num_src=n)


def induced_subgraph(g: CSRGraph, vertices: np.ndarray) -> Tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``vertices``.

    Returns the relabelled subgraph and the old->new id map (``-1`` for
    vertices not retained).
    """
    vertices = np.unique(np.asarray(vertices, dtype=INDEX_DTYPE))
    n = max(g.num_vertices, g.num_src)
    remap = np.full(n, -1, dtype=INDEX_DTYPE)
    remap[vertices] = np.arange(vertices.size, dtype=INDEX_DTYPE)
    src, dst, _ = g.to_coo()
    keep = (remap[src] >= 0) & (remap[dst] >= 0)
    sub = coo_to_csr(
        remap[src[keep]],
        remap[dst[keep]],
        num_dst=vertices.size,
        num_src=vertices.size,
    )
    return sub, remap


def degree_histogram(g: CSRGraph, bins: int = 32) -> Tuple[np.ndarray, np.ndarray]:
    """Log-spaced in-degree histogram (counts, bin_edges)."""
    deg = g.in_degrees()
    maxd = max(int(deg.max(initial=1)), 1)
    edges = np.unique(
        np.round(np.logspace(0, np.log10(maxd + 1), bins)).astype(np.int64)
    )
    counts, edges = np.histogram(deg, bins=edges)
    return counts, edges


def powerlaw_exponent_estimate(g: CSRGraph) -> float:
    """Crude MLE estimate of the degree power-law exponent (alpha).

    Uses the Clauset-style continuous MLE over degrees >= dmin=max(1, median).
    Only intended for sanity checks that generated graphs are heavy-tailed.
    """
    deg = g.in_degrees().astype(np.float64)
    deg = deg[deg > 0]
    if deg.size < 2:
        return float("nan")
    dmin = max(1.0, float(np.median(deg)))
    tail = deg[deg >= dmin]
    if tail.size < 2:
        return float("nan")
    return 1.0 + tail.size / np.sum(np.log(tail / dmin))


def split_train_val_test(
    num_vertices: int,
    train_frac: float = 0.6,
    val_frac: float = 0.2,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random boolean masks for train/val/test vertex splits."""
    if train_frac + val_frac > 1.0:
        raise ValueError("train_frac + val_frac must be <= 1")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(num_vertices)
    n_train = int(train_frac * num_vertices)
    n_val = int(val_frac * num_vertices)
    train = np.zeros(num_vertices, dtype=bool)
    val = np.zeros(num_vertices, dtype=bool)
    test = np.zeros(num_vertices, dtype=bool)
    train[perm[:n_train]] = True
    val[perm[n_train : n_train + n_val]] = True
    test[perm[n_train + n_val :]] = True
    return train, val, test


def gcn_normalization(g: CSRGraph) -> np.ndarray:
    """Per-destination 1/(in_degree + 1) normalizer.

    The paper's GCN aggregation operator adds the vertex's own features to
    the aggregate and normalizes by in-degree (Section 6.1 "Models and
    Parameters"); the +1 accounts for the self term.
    """
    deg = g.in_degrees().astype(np.float64)
    return (1.0 / (deg + 1.0)).astype(np.float32)
