"""Closed-form cache model for the blocked aggregation primitive.

For each source block ``b`` the kernel touches ``E_b`` edges drawing from
``A_b`` distinct ``f_V`` rows.  With a cache of ``C`` vectors:

- every distinct row pays one cold miss: ``A_b`` misses;
- if the active set exceeds the cache (``A_b > C``), the remaining
  ``E_b - A_b`` re-accesses hit with probability ``≈ C / A_b`` (the
  stationary hit rate of a cache that can hold a ``C/A_b`` fraction of a
  uniformly revisited working set), so
  ``misses_b = A_b + (E_b - A_b) * (1 - C / A_b)``.

Summing over blocks gives total misses; reuse = ``E / Σ misses_b``.  This
reproduces the Table 3 trends — reuse rises with ``nB`` until blocks fit
in cache, then falls as cold misses repeat across blocks for dense graphs,
while staying flat ≈2 for very sparse graphs — and is cheap enough for the
auto-tuner to sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.blocked import block_bounds


@dataclass(frozen=True)
class BlockAccessProfile:
    """Access statistics of one source block of Alg. 2."""

    block_id: int
    num_edges: int
    distinct_sources: int
    touched_destinations: int


def block_access_profiles(
    graph: CSRGraph, num_blocks: int
) -> List[BlockAccessProfile]:
    """Per-block (E_b, A_b, rows-touched) in one vectorized pass."""
    bounds = block_bounds(graph.num_src, num_blocks)
    block_size = max(int(bounds[1] - bounds[0]), 1) if num_blocks > 1 else graph.num_src
    src, dst, _ = graph.to_coo()
    if num_blocks == 1:
        block_of = np.zeros(src.size, dtype=np.int64)
    else:
        block_of = np.minimum(src // block_size, num_blocks - 1)
    profiles = []
    for b in range(num_blocks):
        mask = block_of == b
        e_b = int(mask.sum())
        if e_b:
            a_b = int(np.unique(src[mask]).size)
            t_b = int(np.unique(dst[mask]).size)
        else:
            a_b = t_b = 0
        profiles.append(BlockAccessProfile(b, e_b, a_b, t_b))
    return profiles


def analytic_misses(
    profiles: Sequence[BlockAccessProfile],
    cache_vectors: int,
    include_outputs: bool = True,
) -> float:
    """Predicted ``f_V`` misses for the blocked kernel.

    Models the cache as LRU shared between the block's ``f_V`` working set
    (``A_b`` rows, revisited uniformly) and the streaming ``f_O`` rows
    (``T_b`` per pass, never revisited within the pass).  Under LRU, each
    stream occupies a cache share proportional to its *insertion* rate, so
    the f_V share solves the fixed point::

        h   = min(1, (C * i_f / (i_f + T_b)) / A_b)     # re-access hit prob
        i_f = A_b + (E_b - A_b) * (1 - h)               # f_V insertions

    Misses = cold (``A_b``) + re-access misses.  With ``include_outputs``
    off this degrades to the classical single-stream capacity model.
    """
    c = float(max(cache_vectors, 1))
    misses = 0.0
    for p in profiles:
        if p.num_edges == 0:
            continue
        a = float(p.distinct_sources)
        e = float(p.num_edges)
        t = float(p.touched_destinations) if include_outputs else 0.0
        re_accesses = max(e - a, 0.0)
        h = 1.0
        for _ in range(32):
            i_f = a + re_accesses * (1.0 - h)
            share = i_f / (i_f + t) if (i_f + t) > 0 else 1.0
            h_new = min(1.0, (c * share) / a) if a > 0 else 1.0
            if abs(h_new - h) < 1e-9:
                h = h_new
                break
            h = h_new
        misses += a + re_accesses * (1.0 - h)
    return misses


def analytic_reuse(
    graph: CSRGraph,
    num_blocks: int,
    cache_vectors: int,
    include_outputs: bool = True,
) -> float:
    """Predicted paper-Table-3 reuse.

    Matches :class:`repro.cachesim.lru.LRUReuseResult.reuse`: edge accesses
    divided by rows fetched from memory — f_V gather misses plus the f_O
    rows streamed once per block pass.
    """
    profiles = block_access_profiles(graph, num_blocks)
    misses = analytic_misses(profiles, cache_vectors, include_outputs)
    fo_reads = (
        sum(p.touched_destinations for p in profiles) if include_outputs else 0
    )
    denom = misses + fo_reads
    return graph.num_edges / denom if denom else float("inf")


#: Paper hardware: Xeon 8280, 38.5 MB shared L3 per socket.
XEON_8280_LLC_BYTES = 38.5 * 2**20


def cache_vectors_for(
    num_vertices: int,
    feature_dim: int,
    feature_bytes: int = 4,
    llc_bytes: float = XEON_8280_LLC_BYTES,
    paper_fv_bytes: float = None,
) -> int:
    """Cache capacity in feature vectors, preserving the paper's pressure.

    On the paper's hardware what matters is the ratio ``|f_V| / LLC``
    (Reddit: 561 MB / 38.5 MB ≈ 14.6×).  Our stand-in graphs are smaller,
    so simulating the literal 38.5 MB would make everything cache-resident
    and erase the blocking phenomenon.  When ``paper_fv_bytes`` is given we
    scale the simulated cache to keep the same pressure ratio; otherwise
    the literal capacity is used.
    """
    vec_bytes = feature_dim * feature_bytes
    if paper_fv_bytes is not None:
        ratio = paper_fv_bytes / llc_bytes
        fv_bytes = num_vertices * vec_bytes
        effective = fv_bytes / ratio
    else:
        effective = llc_bytes
    return max(int(effective / vec_bytes), 1)
