"""Memory-traffic accounting per kernel variant (Figs. 3–4).

Breaks the AP's memory IO into the streams the paper's analysis names:

- ``f_V`` gathers: misses from the cache model × vector bytes (read);
- ``f_O`` passes: with ``nB`` blocks every touched output row is read and
  written once per block (the "nB passes over f_O");
- edge structure: CSR indices + edge ids streamed once (read);
- ``f_E`` stream: edge features streamed once when the operator reads them.

``traffic_for_kernel`` maps each optimization-ladder variant of Fig. 4 to
its traffic profile; the time conversion lives in
:mod:`repro.perf.roofline`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cachesim.analytic import analytic_misses, block_access_profiles
from repro.graph.csr import CSRGraph
from repro.kernels.operators import get_binary_op

INDEX_BYTES = 8  # int64 indices, matching CSRGraph storage


@dataclass(frozen=True)
class KernelTraffic:
    """Bytes moved to/from memory by one AP invocation."""

    bytes_read: float
    bytes_written: float
    fv_misses: float
    num_blocks: int

    @property
    def total(self) -> float:
        """Total memory IO (read + written) — Fig. 3's headline series."""
        return self.bytes_read + self.bytes_written


def ap_traffic(
    graph: CSRGraph,
    feature_dim: int,
    num_blocks: int = 1,
    cache_vectors: Optional[int] = None,
    feature_bytes: int = 4,
    binary_op: str = "copylhs",
    edge_feature_dim: int = 0,
) -> KernelTraffic:
    """Traffic of the (optionally blocked) AP kernel.

    ``cache_vectors=None`` means a cold cache with no reuse at all
    (every gather misses) — the pessimistic bound used for the
    un-optimized baseline.
    """
    vec_bytes = feature_dim * feature_bytes
    profiles = block_access_profiles(graph, num_blocks)
    if cache_vectors is None:
        fv_misses = float(graph.num_edges)
    else:
        fv_misses = analytic_misses(profiles, cache_vectors)

    bop = get_binary_op(binary_op)
    read = 0.0
    if bop.uses_lhs:
        read += fv_misses * vec_bytes
    # CSR structure streams once per pass over the edges.
    read += graph.num_edges * INDEX_BYTES  # indices
    read += graph.num_vertices * num_blocks * INDEX_BYTES  # indptr per pass
    if bop.uses_rhs:
        eb = (edge_feature_dim or feature_dim) * feature_bytes
        read += graph.num_edges * (eb + INDEX_BYTES)  # f_E + edge_ids

    # f_O: every touched row is read+written once per block pass.
    touched_per_pass = sum(p.touched_destinations for p in profiles)
    write = touched_per_pass * vec_bytes
    read += touched_per_pass * vec_bytes
    return KernelTraffic(
        bytes_read=read,
        bytes_written=float(write),
        fv_misses=fv_misses,
        num_blocks=num_blocks,
    )


def traffic_for_kernel(
    graph: CSRGraph,
    feature_dim: int,
    variant: str,
    cache_vectors: int,
    num_blocks: int = 1,
    feature_bytes: int = 4,
    binary_op: str = "copylhs",
) -> KernelTraffic:
    """Traffic profile of one Fig. 4 optimization-ladder variant.

    Variants (cumulative, as in the paper's breakdown):

    - ``"baseline"``: no blocking; gathers assumed to thrash (the DGL 0.5.3
      behaviour the paper measures ~0 reuse for at nB=1 on big graphs).
    - ``"dynamic"``: + dynamic scheduling — traffic unchanged (DS attacks
      load imbalance, not IO; see Fig. 4 where the Reddit IO bar is flat).
    - ``"blocked"``: + cache blocking with ``num_blocks``.
    - ``"reordered"``: + loop reordering — IO equal to blocked; the gain is
      in instruction count (modelled in the roofline, not here).
    """
    if variant in ("baseline", "dynamic"):
        return ap_traffic(
            graph,
            feature_dim,
            num_blocks=1,
            cache_vectors=cache_vectors,
            feature_bytes=feature_bytes,
            binary_op=binary_op,
        )
    if variant in ("blocked", "reordered"):
        return ap_traffic(
            graph,
            feature_dim,
            num_blocks=num_blocks,
            cache_vectors=cache_vectors,
            feature_bytes=feature_bytes,
            binary_op=binary_op,
        )
    raise ValueError(
        f"unknown variant {variant!r}; expected baseline/dynamic/blocked/reordered"
    )
