"""Exact trace-driven LRU cache at feature-vector granularity.

Models the socket's last-level cache as a fully-associative LRU holding
whole feature vectors (one vector = one "line"; the paper reasons at this
granularity too: "a feature vector accessed once and brought into cache
may get thrashed out before it is needed again").

The simulated trace is exactly the access pattern of the blocked AP
kernel (Alg. 2): for each source block, destinations are scanned in order
and each neighbour's ``f_V`` row is touched.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.blocked import BlockedGraph


class LRUFeatureCache:
    """Fully-associative LRU over integer keys (feature-vector ids).

    Counter conservation (the :class:`~repro.serving.cache.ResultCache`
    audit contract, pinned by ``tests/cachesim/test_lru_properties.py``):
    ``lookups == hits + misses`` and ``occupancy == misses - evictions``
    hold at every instant, under any interleaving of :meth:`access` and
    :meth:`access_many`.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._slots: "OrderedDict[int, None]" = OrderedDict()
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def access(self, key: int) -> bool:
        """Touch ``key``; returns True on hit."""
        slots = self._slots
        self.lookups += 1
        if key in slots:
            slots.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        if len(slots) >= self.capacity:
            slots.popitem(last=False)
            self.evictions += 1
        slots[key] = None
        return False

    def access_many(self, keys: np.ndarray) -> int:
        """Touch a sequence of keys; returns the number of misses added."""
        before = self.misses
        for key in keys.tolist():
            self.access(key)
        return self.misses - before

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def occupancy(self) -> int:
        """Keys currently resident (``== misses - evictions``)."""
        return len(self._slots)

    def reset(self) -> None:
        self._slots.clear()
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0


@dataclass(frozen=True)
class LRUReuseResult:
    """Reuse statistics of one blocked-kernel simulation.

    ``reuse`` follows the paper's Table 3 accounting: edge accesses per
    feature row *fetched from memory*, where fetches include both ``f_V``
    gather misses and the ``f_O`` rows re-read on every block pass.  The
    f_O term is what makes reuse fall again beyond the sweet-spot nB
    ("each additional pass of f_O adds to BW requirement", Section 4.2).
    ``fv_reuse`` is the gather-only variant used for model validation.
    """

    num_blocks: int
    cache_vectors: int
    accesses: int
    misses: int
    fo_reads: int = 0

    @property
    def reuse(self) -> float:
        """Paper Table 3 metric: accesses / (f_V misses + f_O pass reads)."""
        denom = self.misses + self.fo_reads
        return self.accesses / denom if denom else float("inf")

    @property
    def fv_reuse(self) -> float:
        """Gather-only reuse: accesses per f_V memory fetch."""
        return self.accesses / self.misses if self.misses else float("inf")

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


def _block_trace(block: CSRGraph, fo_offset: int) -> np.ndarray:
    """Interleaved access trace of one block pass.

    For each destination row with edges in the block: its neighbours'
    ``f_V`` rows, then the ``f_O`` row itself (write-allocate).  The f_O
    keys are offset past the f_V id space.  This pollution is what makes
    cache reuse *fall* beyond the sweet-spot nB in the paper's Table 3 —
    every extra pass streams the output matrix through the cache.
    """
    indptr, indices = block.indptr, block.indices
    row_sizes = np.diff(indptr)
    rows = np.flatnonzero(row_sizes)
    trace = np.empty(indices.size + rows.size, dtype=np.int64)
    # position of each row's f_O access: after its last neighbour, shifted
    # by the number of earlier f_O accesses already inserted.
    fo_pos = indptr[rows + 1] + np.arange(rows.size)
    mask = np.zeros(trace.size, dtype=bool)
    mask[fo_pos] = True
    trace[~mask] = indices
    trace[mask] = fo_offset + rows
    return trace


def simulate_lru_reuse(
    graph: CSRGraph,
    num_blocks: int,
    cache_vectors: int,
    include_outputs: bool = True,
) -> LRUReuseResult:
    """Replay the blocked AP's access trace through an LRU cache.

    Parameters
    ----------
    graph:
        Destination-major adjacency.
    num_blocks:
        ``nB`` of Alg. 2; 1 = unblocked.
    cache_vectors:
        Cache capacity in feature vectors (see
        :func:`repro.cachesim.analytic.cache_vectors_for` for hardware-
        calibrated values).
    include_outputs:
        Interleave the ``f_O`` write-allocate accesses (realistic; the
        pure-``f_V`` mode is kept for model validation).

    Only ``f_V`` accesses count toward the reuse statistic, matching the
    paper's metric; ``f_O`` accesses occupy cache but are not counted.
    """
    blocked = BlockedGraph.build(graph, num_blocks)
    cache = LRUFeatureCache(cache_vectors)
    fv_limit = graph.num_src
    fv_accesses = 0
    fv_misses = 0
    fo_reads = 0
    for block in blocked.blocks:
        trace = (
            _block_trace(block, fv_limit) if include_outputs else block.indices
        )
        for key in trace.tolist():
            miss = not cache.access(key)
            if key < fv_limit:
                fv_accesses += 1
                fv_misses += miss
            else:
                fo_reads += miss
    return LRUReuseResult(
        num_blocks=num_blocks,
        cache_vectors=cache_vectors,
        accesses=fv_accesses,
        misses=fv_misses,
        fo_reads=fo_reads,
    )
