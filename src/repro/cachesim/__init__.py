"""Cache and memory-traffic models for the aggregation primitive.

The paper's single-socket analysis (Table 3, Figs. 3–4) is phrased in
terms of *cache reuse* of vertex-feature vectors and *bytes read/written*
to memory as a function of the number of source blocks ``nB``.  On real
hardware these come from performance counters; here they come from:

- :mod:`repro.cachesim.lru` — an exact trace-driven, fully-associative LRU
  cache at feature-vector granularity (ground truth, used by tests and
  small benches);
- :mod:`repro.cachesim.analytic` — a closed-form per-block model (cold
  misses + capacity-thrash term) that matches the LRU trends at zero cost,
  used by the auto-tuner and large sweeps;
- :mod:`repro.cachesim.traffic` — per-kernel-variant byte accounting
  (f_V misses, f_O passes, edge/index streams) feeding the roofline time
  model.
"""

from repro.cachesim.lru import LRUFeatureCache, simulate_lru_reuse
from repro.cachesim.analytic import (
    BlockAccessProfile,
    analytic_misses,
    block_access_profiles,
    cache_vectors_for,
)
from repro.cachesim.traffic import KernelTraffic, traffic_for_kernel

__all__ = [
    "LRUFeatureCache",
    "simulate_lru_reuse",
    "BlockAccessProfile",
    "block_access_profiles",
    "analytic_misses",
    "cache_vectors_for",
    "KernelTraffic",
    "traffic_for_kernel",
]
