"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``       dataset stand-in statistics (Table 2 style).
``partition``  run Libra (or a baseline) and report partition quality.
``train``      full-batch training, single-socket or distributed with any
               DRPA algorithm.
``sample``     mini-batch (Dist-DGL style) training.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DistGNN reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="dataset statistics")
    _dataset_args(p_info)

    p_part = sub.add_parser("partition", help="partition a dataset graph")
    _dataset_args(p_part)
    p_part.add_argument("--partitions", type=int, default=4)
    p_part.add_argument(
        "--partitioner", choices=("libra", "random", "hash"), default="libra"
    )

    p_train = sub.add_parser("train", help="full-batch training")
    _dataset_args(p_train)
    p_train.add_argument("--epochs", type=int, default=50)
    p_train.add_argument("--lr", type=float, default=0.01)
    p_train.add_argument("--partitions", type=int, default=1)
    p_train.add_argument(
        "--algorithm", default="cd-0", help="0c | cd-0 | cd-<r> (when partitions > 1)"
    )
    p_train.add_argument(
        "--compression", choices=("none", "fp16", "bf16"), default="none"
    )
    p_train.add_argument(
        "--backend", choices=("sim", "shm"), default="sim",
        help="distributed execution backend: in-process lockstep simulator "
        "or one OS process per rank over shared memory (partitions > 1)",
    )
    p_train.add_argument("--checkpoint", default=None, help="save final state here")

    p_sample = sub.add_parser("sample", help="mini-batch training")
    _dataset_args(p_sample)
    p_sample.add_argument("--epochs", type=int, default=10)
    p_sample.add_argument("--lr", type=float, default=0.01)
    p_sample.add_argument("--batch-size", type=int, default=256)
    p_sample.add_argument(
        "--fanouts", type=int, nargs="+", default=None,
        help="one fanout per layer (default: 10 per layer)",
    )
    return parser


def _dataset_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dataset", default="ogbn-products")
    p.add_argument("--scale", type=float, default=0.15)
    p.add_argument("--seed", type=int, default=0)


def _load(args):
    from repro.graph.datasets import load_dataset

    return load_dataset(args.dataset, scale=args.scale, seed=args.seed)


def cmd_info(args) -> int:
    from repro.graph.datasets import PAPER_DATASET_STATS
    from repro.graph.utils import average_degree, density

    ds = _load(args)
    print(ds.summary())
    print(f"density      : {density(ds.graph):.3e}")
    print(f"avg degree   : {average_degree(ds.graph):.1f}")
    paper = PAPER_DATASET_STATS.get(ds.name)
    if paper:
        print(
            f"paper scale  : |V|={paper.num_vertices:,} |E|={paper.num_edges:,} "
            f"d={paper.num_features} classes={paper.num_classes}"
        )
    return 0


def cmd_partition(args) -> int:
    from repro.partition import (
        build_partitions,
        hash_edge_partition,
        libra_partition,
        partition_stats,
        random_edge_partition,
    )

    ds = _load(args)
    if args.partitioner == "libra":
        asn = libra_partition(ds.graph, args.partitions, seed=args.seed)
    elif args.partitioner == "random":
        asn = random_edge_partition(ds.graph, args.partitions, seed=args.seed)
    else:
        asn = hash_edge_partition(ds.graph, args.partitions)
    st = partition_stats(build_partitions(ds.graph, asn, args.partitions))
    print(f"{args.partitioner} over {ds.name} ({args.partitions} partitions):")
    print(f"  replication factor : {st.replication_factor:.3f}")
    print(f"  edge balance       : {st.edge_balance:.3f}")
    print(f"  split vertices     : {100 * st.split_vertex_fraction:.1f}%")
    print(f"  edges min/max      : {st.min_edges} / {st.max_edges}")
    return 0


def cmd_train(args) -> int:
    from repro.core import DistributedTrainer, TrainConfig, Trainer
    from repro.core.checkpoint import save_checkpoint

    ds = _load(args)
    cfg = TrainConfig(
        learning_rate=args.lr,
        eval_every=max(args.epochs // 5, 1),
        seed=args.seed,
        compression=args.compression,
        backend=args.backend,
    ).for_dataset(ds.name)
    if args.partitions <= 1:
        trainer = Trainer(ds, cfg)
        result = trainer.fit(num_epochs=args.epochs, verbose=True)
        model, opt = trainer.model, trainer.optimizer
    else:
        trainer = DistributedTrainer(
            ds, args.partitions, algorithm=args.algorithm, config=cfg
        )
        result = trainer.fit(num_epochs=args.epochs, verbose=True)
        model, opt = trainer.ranks[0].model, trainer.ranks[0].optimizer
        print(f"replication factor : {result.replication_factor:.2f}")
        print(f"total comm         : {result.total_comm_bytes / 1e6:.1f} MB")
    print(f"final test accuracy: {result.final_test_acc:.4f}")
    if args.checkpoint:
        save_checkpoint(args.checkpoint, model, opt, epoch=args.epochs)
        print(f"checkpoint written : {args.checkpoint}")
    return 0


def cmd_sample(args) -> int:
    from repro.core import TrainConfig
    from repro.sampling import MiniBatchTrainer

    ds = _load(args)
    cfg = TrainConfig(
        learning_rate=args.lr, eval_every=0, seed=args.seed
    ).for_dataset(ds.name)
    fanouts = args.fanouts or [10] * cfg.num_layers
    trainer = MiniBatchTrainer(
        ds, fanouts=fanouts, batch_size=args.batch_size, config=cfg
    )
    result = trainer.fit(num_epochs=args.epochs, verbose=True)
    print(f"final test accuracy: {result.final_test_acc:.4f}")
    print(f"sampled work       : {trainer.total_work_ops / 1e9:.3f} B ops")
    return 0


COMMANDS = {
    "info": cmd_info,
    "partition": cmd_partition,
    "train": cmd_train,
    "sample": cmd_sample,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
