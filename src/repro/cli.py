"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``       dataset stand-in statistics (Table 2 style).
``partition``  run Libra (or a baseline) and report partition quality.
``train``      full-batch training, single-socket or distributed with any
               DRPA algorithm; ``--checkpoint`` saves restartable state,
               ``--resume`` continues from it.
``sample``     mini-batch (Dist-DGL style) training.
``predict``    one-shot predictions from a checkpoint.
``serve``      HTTP prediction service (precompute + micro-batched
               lookups + LRU result cache) over a checkpoint; accepts
               streaming edge updates on ``POST /update_edges``.
``ingest``     streaming topology ingestion: replay a held-out edge
               suffix through the delta-CSR dynamic graph and the
               online Libra partitioner, with drift + compaction report.
``loadgen``    open-loop load generator: seeded Poisson or bursty
               arrivals over mixed predict/topk/update traffic, against
               a running server (``--url``) or an in-process service
               built from a checkpoint; reports offered vs achieved
               throughput, p50/p99 latency, and reject/timeout rates.
``trace``      end-to-end request tracing: fetch the span buffer of a
               running server (``--url`` -> ``GET /trace``) or drive a
               traced in-process load run (``--checkpoint``); writes
               Chrome trace-event JSON (loadable in Perfetto /
               ``chrome://tracing``), optional JSONL, and prints the
               per-endpoint latency decomposition (queue / gate / batch
               / compute / feature vs end-to-end).
``check``      project-invariant static analysis: guarded-by discipline,
               blocking-under-lock, read-only hand-outs, classified
               broad excepts (REP101–REP104); text or ``--json`` report,
               optional ``--baseline`` suppression file, exit 1 on new
               violations.  Pairs with the ``REPRO_SANITIZE=1`` runtime
               lock-order sanitizer (see docs/ARCHITECTURE.md §8).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DistGNN reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="dataset statistics")
    _dataset_args(p_info)

    p_part = sub.add_parser("partition", help="partition a dataset graph")
    _dataset_args(p_part)
    p_part.add_argument("--partitions", type=int, default=4)
    p_part.add_argument(
        "--partitioner", choices=("libra", "random", "hash"), default="libra"
    )

    p_train = sub.add_parser("train", help="full-batch training")
    _dataset_args(p_train)
    p_train.add_argument("--epochs", type=int, default=50)
    p_train.add_argument("--lr", type=float, default=0.01)
    p_train.add_argument("--partitions", type=int, default=1)
    p_train.add_argument(
        "--algorithm", default="cd-0", help="0c | cd-0 | cd-<r> (when partitions > 1)"
    )
    p_train.add_argument(
        "--compression", choices=("none", "fp16", "bf16"), default="none"
    )
    p_train.add_argument(
        "--backend", choices=("sim", "shm"), default="sim",
        help="distributed execution backend: in-process lockstep simulator "
        "or one OS process per rank over shared memory (partitions > 1)",
    )
    p_train.add_argument(
        "--num-threads", type=int, default=None,
        help="kernel worker threads: > 1 runs every aggregation on the "
        "parallel execution engine (bit-identical results)",
    )
    p_train.add_argument("--checkpoint", default=None, help="save final state here")
    p_train.add_argument(
        "--resume", default=None, metavar="CKPT",
        help="resume single-socket training from a checkpoint; --epochs "
        "is the total budget, so an epoch-k checkpoint runs epochs k..N",
    )
    _feature_store_args(p_train)

    p_sample = sub.add_parser("sample", help="mini-batch training")
    _dataset_args(p_sample)
    p_sample.add_argument("--epochs", type=int, default=10)
    p_sample.add_argument("--lr", type=float, default=0.01)
    p_sample.add_argument("--batch-size", type=int, default=256)
    p_sample.add_argument(
        "--fanouts", type=int, nargs="+", default=None,
        help="one fanout per layer (default: 10 per layer)",
    )
    _feature_store_args(p_sample)

    p_pred = sub.add_parser("predict", help="one-shot checkpoint predictions")
    _dataset_args(p_pred)
    p_pred.add_argument("--checkpoint", required=True)
    p_pred.add_argument(
        "--vertices", required=True,
        help="comma-separated vertex ids, e.g. 0,17,42",
    )
    p_pred.add_argument("--k", type=int, default=3, help="top-k classes to print")
    p_pred.add_argument(
        "--num-threads", type=int, default=None,
        help="worker threads for the precompute pass",
    )

    p_serve = sub.add_parser("serve", help="HTTP prediction service")
    _dataset_args(p_serve)
    p_serve.add_argument("--checkpoint", required=True)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument(
        "--cache-size", type=int, default=4096,
        help="LRU result-cache capacity in vertices (0 disables)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=256,
        help="micro-batcher coalescing limit in vertices (0 disables batching)",
    )
    p_serve.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="micro-batcher window: how long the first request of a "
        "batch is held open for followers",
    )
    p_serve.add_argument(
        "--num-threads", type=int, default=None,
        help="worker threads for precompute and refresh passes",
    )
    p_serve.add_argument(
        "--full-threshold", type=float, default=0.25,
        help="edge/feature updates whose affected set exceeds this "
        "fraction of the graph trigger a full precompute instead of an "
        "incremental refresh",
    )
    p_serve.add_argument(
        "--workers", type=int, default=4,
        help="request-execution worker pool size",
    )
    p_serve.add_argument(
        "--max-queue", type=int, default=256,
        help="admission queue bound; requests beyond it answer 429",
    )
    p_serve.add_argument(
        "--request-timeout", type=float, default=30.0,
        help="per-request deadline in seconds (missed deadlines answer 503)",
    )
    _feature_store_args(p_serve)

    p_load = sub.add_parser("loadgen", help="open-loop serving load generator")
    _dataset_args(p_load)
    target = p_load.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--url", default=None, metavar="BASE",
        help="drive a running server, e.g. http://127.0.0.1:8080",
    )
    target.add_argument(
        "--checkpoint", default=None,
        help="build an in-process service from this checkpoint instead",
    )
    p_load.add_argument("--rate", type=float, default=50.0, help="offered req/s")
    p_load.add_argument("--duration", type=float, default=10.0, help="seconds")
    p_load.add_argument(
        "--arrival", choices=("poisson", "bursty"), default="poisson"
    )
    p_load.add_argument(
        "--mix", default=None, metavar="SPEC",
        help="endpoint mix, e.g. predict=0.7,topk=0.25,update_edges=0.05",
    )
    p_load.add_argument("--clients", type=int, default=32, help="client threads")
    p_load.add_argument("--batch-size", type=int, default=8,
                        help="vertices per predict/topk request")
    p_load.add_argument("--k", type=int, default=3, help="top-k for topk requests")
    p_load.add_argument(
        "--workers", type=int, default=4,
        help="in-process frontend worker pool size (--checkpoint mode)",
    )
    p_load.add_argument(
        "--max-queue", type=int, default=256,
        help="in-process admission queue bound (--checkpoint mode)",
    )
    p_load.add_argument(
        "--request-timeout", type=float, default=30.0,
        help="per-request deadline in seconds",
    )
    p_load.add_argument(
        "--num-threads", type=int, default=None,
        help="kernel worker threads for the in-process precompute",
    )
    _feature_store_args(p_load)

    p_trace = sub.add_parser(
        "trace", help="capture an end-to-end request trace (Chrome trace JSON)"
    )
    _dataset_args(p_trace)
    trace_target = p_trace.add_mutually_exclusive_group(required=True)
    trace_target.add_argument(
        "--url", default=None, metavar="BASE",
        help="fetch the span buffer of a running server via GET /trace",
    )
    trace_target.add_argument(
        "--checkpoint", default=None,
        help="drive a traced in-process load run from this checkpoint",
    )
    p_trace.add_argument("--rate", type=float, default=50.0, help="offered req/s")
    p_trace.add_argument("--duration", type=float, default=5.0, help="seconds")
    p_trace.add_argument(
        "--arrival", choices=("poisson", "bursty"), default="poisson"
    )
    p_trace.add_argument(
        "--mix", default=None, metavar="SPEC",
        help="endpoint mix, e.g. predict=0.7,topk=0.25,update_edges=0.05",
    )
    p_trace.add_argument("--clients", type=int, default=32, help="client threads")
    p_trace.add_argument("--batch-size", type=int, default=8,
                         help="vertices per predict/topk request")
    p_trace.add_argument("--k", type=int, default=3, help="top-k for topk requests")
    p_trace.add_argument(
        "--workers", type=int, default=4,
        help="in-process frontend worker pool size (--checkpoint mode)",
    )
    p_trace.add_argument(
        "--max-queue", type=int, default=256,
        help="in-process admission queue bound (--checkpoint mode)",
    )
    p_trace.add_argument(
        "--request-timeout", type=float, default=30.0,
        help="per-request deadline in seconds",
    )
    p_trace.add_argument(
        "--num-threads", type=int, default=None,
        help="kernel worker threads for the in-process precompute",
    )
    p_trace.add_argument(
        "--sample", type=float, default=1.0,
        help="head-based root-span sampling rate in (0, 1]",
    )
    p_trace.add_argument(
        "--buffer", type=int, default=4096,
        help="span ring-buffer capacity (oldest spans overwritten)",
    )
    p_trace.add_argument(
        "--out", default="trace.json",
        help="Chrome trace-event JSON output path",
    )
    p_trace.add_argument(
        "--jsonl", default=None, metavar="FILE",
        help="also write one span record per line here",
    )
    _feature_store_args(p_trace)

    p_ing = sub.add_parser("ingest", help="streaming edge ingestion")
    _dataset_args(p_ing)
    p_ing.add_argument("--partitions", type=int, default=4)
    p_ing.add_argument(
        "--stream-fraction", type=float, default=0.2,
        help="fraction of edges held out of the base graph and replayed "
        "as the arriving stream",
    )
    p_ing.add_argument(
        "--chunk-size", type=int, default=4096,
        help="edges per ingest chunk (one assignment + append batch)",
    )
    p_ing.add_argument(
        "--compact-threshold", type=float, default=0.25,
        help="delta fraction that triggers auto-compaction",
    )
    p_ing.add_argument(
        "--drift-tolerance", type=float, default=0.1,
        help="relative replication-factor growth that triggers the "
        "repartition recommendation",
    )
    p_ing.add_argument(
        "--state", default=None, metavar="NPZ",
        help="LibraState checkpoint: resumed when the file exists, "
        "written on exit (makes ingestion restartable)",
    )

    p_check = sub.add_parser(
        "check", help="project-invariant static analysis (REP1xx rules)"
    )
    p_check.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    p_check.add_argument(
        "--json", action="store_true", dest="json_output",
        help="machine-readable report on stdout",
    )
    p_check.add_argument(
        "--rules", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    p_check.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppression file: violations whose fingerprint appears in "
        "it are reported but do not fail the run",
    )
    p_check.add_argument(
        "--write-baseline", action="store_true",
        help="write current violations to --baseline and exit 0",
    )
    p_check.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _dataset_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dataset", default="ogbn-products")
    p.add_argument("--scale", type=float, default=0.15)
    p.add_argument("--seed", type=int, default=0)


def _feature_store_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--feature-store", choices=("resident", "mmap"), default="resident",
        help="feature tier: 'resident' keeps the matrix in memory (the "
        "default, unchanged behaviour); 'mmap' reads a read-only on-disk "
        "layout through the degree-pinned hot-set cache (out-of-core)",
    )
    p.add_argument(
        "--hot-fraction", type=float, default=0.1,
        help="hot-set cache capacity as a fraction of rows (mmap tier)",
    )
    p.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="directory for the on-disk feature layout (mmap tier); "
        "reused when a matching layout already exists, default a "
        "per-run temporary directory",
    )


def _make_feature_store(ds, args):
    """``--feature-store`` flags -> FeatureStore (None = resident default)."""
    if getattr(args, "feature_store", "resident") == "resident":
        return None
    import tempfile

    from repro.featurestore import FeatureStore

    store_dir = args.store_dir or tempfile.mkdtemp(prefix="repro-features-")
    store = FeatureStore.create(
        store_dir,
        ds.features,
        degrees=ds.graph.in_degrees(),
        hot_fraction=args.hot_fraction,
        policy="auto",
    )
    print(
        f"feature store  : mmap tier at {store_dir} "
        f"({store.bytes_mapped / 1e6:.1f} MB mapped)"
    )
    d = store.decision
    if store.hot is not None and d is not None:
        print(
            f"  hot set      : {store.hot.capacity}/{store.num_rows} rows "
            f"({100 * args.hot_fraction:.0f}%), policy {d.policy} "
            f"(predicted hit rate {d.predicted_hit_rate:.3f})"
        )
    return store


def _load(args):
    from repro.graph.datasets import load_dataset

    return load_dataset(args.dataset, scale=args.scale, seed=args.seed)


def cmd_info(args) -> int:
    from repro.graph.datasets import PAPER_DATASET_STATS
    from repro.graph.utils import average_degree, density

    ds = _load(args)
    print(ds.summary())
    print(f"density      : {density(ds.graph):.3e}")
    print(f"avg degree   : {average_degree(ds.graph):.1f}")
    paper = PAPER_DATASET_STATS.get(ds.name)
    if paper:
        print(
            f"paper scale  : |V|={paper.num_vertices:,} |E|={paper.num_edges:,} "
            f"d={paper.num_features} classes={paper.num_classes}"
        )
    return 0


def cmd_partition(args) -> int:
    from repro.partition import (
        build_partitions,
        hash_edge_partition,
        libra_partition,
        partition_stats,
        random_edge_partition,
    )

    ds = _load(args)
    if args.partitioner == "libra":
        asn = libra_partition(ds.graph, args.partitions, seed=args.seed)
    elif args.partitioner == "random":
        asn = random_edge_partition(ds.graph, args.partitions, seed=args.seed)
    else:
        asn = hash_edge_partition(ds.graph, args.partitions)
    st = partition_stats(build_partitions(ds.graph, asn, args.partitions))
    print(f"{args.partitioner} over {ds.name} ({args.partitions} partitions):")
    print(f"  replication factor : {st.replication_factor:.3f}")
    print(f"  edge balance       : {st.edge_balance:.3f}")
    print(f"  split vertices     : {100 * st.split_vertex_fraction:.1f}%")
    print(f"  edges min/max      : {st.min_edges} / {st.max_edges}")
    return 0


def cmd_train(args) -> int:
    from repro.core import DistributedTrainer, TrainConfig, Trainer
    from repro.core.checkpoint import load_checkpoint, save_checkpoint, training_meta

    ds = _load(args)
    cfg = TrainConfig(
        learning_rate=args.lr,
        eval_every=max(args.epochs // 5, 1),
        seed=args.seed,
        compression=args.compression,
        backend=args.backend,
        num_threads=args.num_threads,
    ).for_dataset(ds.name)
    store = _make_feature_store(ds, args)
    if args.partitions <= 1:
        trainer = Trainer(ds, cfg, feature_store=store)
        start_epoch = 0
        if args.resume:
            start_epoch, _ = load_checkpoint(
                args.resume, trainer.model, trainer.optimizer
            )
            print(f"resumed from epoch {start_epoch} ({args.resume})")
        result = trainer.fit(
            num_epochs=args.epochs, verbose=True, start_epoch=start_epoch
        )
        model, opt = trainer.model, trainer.optimizer
    else:
        if args.resume:
            print("error: --resume supports single-socket training only "
                  "(--partitions 1)", file=sys.stderr)
            return 2
        trainer = DistributedTrainer(
            ds, args.partitions, algorithm=args.algorithm, config=cfg,
            feature_store=store,
        )
        result = trainer.fit(num_epochs=args.epochs, verbose=True)
        model, opt = trainer.ranks[0].model, trainer.ranks[0].optimizer
        print(f"replication factor : {result.replication_factor:.2f}")
        print(f"total comm         : {result.total_comm_bytes / 1e6:.1f} MB")
    print(f"final test accuracy: {result.final_test_acc:.4f}")
    if args.checkpoint:
        save_checkpoint(
            args.checkpoint, model, opt, epoch=args.epochs, extra=training_meta(cfg)
        )
        print(f"checkpoint written : {args.checkpoint}")
    return 0


def cmd_sample(args) -> int:
    from repro.core import TrainConfig
    from repro.sampling import MiniBatchTrainer

    ds = _load(args)
    cfg = TrainConfig(
        learning_rate=args.lr, eval_every=0, seed=args.seed
    ).for_dataset(ds.name)
    fanouts = args.fanouts or [10] * cfg.num_layers
    store = _make_feature_store(ds, args)
    trainer = MiniBatchTrainer(
        ds, fanouts=fanouts, batch_size=args.batch_size, config=cfg,
        feature_store=store,
    )
    result = trainer.fit(num_epochs=args.epochs, verbose=True)
    print(f"final test accuracy: {result.final_test_acc:.4f}")
    print(f"sampled work       : {trainer.total_work_ops / 1e9:.3f} B ops")
    if store is not None:
        hit = store.stats().get("hit_rate")
        print(f"feature store      : "
              f"{'n/a' if hit is None else format(hit, '.3f')} hit rate, "
              f"{store.cold_rows_read} cold rows read")
    return 0


def cmd_predict(args) -> int:
    from repro.serving import InferenceEngine

    ds = _load(args)
    try:
        vertices = [int(v) for v in args.vertices.replace(",", " ").split()]
    except ValueError:
        print(f"error: bad --vertices {args.vertices!r}", file=sys.stderr)
        return 2
    engine = InferenceEngine.from_checkpoint(
        args.checkpoint, ds, num_threads=args.num_threads
    )
    engine.precompute()
    classes, scores = engine.topk(vertices, k=args.k)
    labels = engine.predict_labels(vertices)
    for v, label, crow, srow in zip(vertices, labels, classes, scores):
        ranked = "  ".join(f"{c}:{s:.3f}" for c, s in zip(crow, srow))
        print(f"vertex {v:>8d}  label {label:>4d}  top{args.k} {ranked}")
    return 0


def _build_service(args):
    """Checkpoint -> (dataset, composed PredictionService) for serve/loadgen."""
    from repro.serving import (
        IncrementalRefresher,
        InferenceEngine,
        PredictionService,
        ResultCache,
    )

    ds = _load(args)
    engine = InferenceEngine.from_checkpoint(
        args.checkpoint, ds, num_threads=args.num_threads,
        feature_store=_make_feature_store(ds, args),
    )
    engine.precompute()
    cache_size = getattr(args, "cache_size", 4096)
    max_batch = getattr(args, "max_batch", 256)
    service = PredictionService(
        engine,
        cache=ResultCache(cache_size) if cache_size > 0 else None,
        batch=max_batch > 0,
        max_batch=max(max_batch, 1),
        max_wait_ms=getattr(args, "max_wait_ms", 2.0),
        # edge/feature updates refresh incrementally below the threshold
        refresher=IncrementalRefresher(
            engine, full_threshold=getattr(args, "full_threshold", 0.25)
        ),
    )
    return ds, service


def cmd_serve(args) -> int:  # pragma: no cover - interactive loop
    from repro.serving import PredictionServer, ServingFrontend

    ds, service = _build_service(args)
    engine = service.engine
    frontend = ServingFrontend(
        service,
        num_workers=args.workers,
        max_queue=args.max_queue,
        default_timeout_s=args.request_timeout,
    )
    server = PredictionServer(
        service, host=args.host, port=args.port, verbose=True, frontend=frontend
    )
    host, port = server.address
    print(f"serving {ds.name} ({engine.model_kind}, {engine.num_vertices} vertices)")
    print(f"  {args.workers} workers, queue bound {args.max_queue}, "
          f"{args.request_timeout:g}s deadline")
    fs = engine.feature_store.stats()
    hit = fs.get("hit_rate")
    print(f"  feature store: tier {fs['tier']}, "
          f"{fs.get('hot_rows') or 0} hot rows, "
          f"hit rate {'n/a' if hit is None else format(hit, '.3f')}, "
          f"{fs['bytes_mapped'] / 1e6:.1f} MB mapped")
    print(f"  POST http://{host}:{port}/predict          "
          '{"vertices": [0, 1], "k": 3}')
    print(f"  POST http://{host}:{port}/update_edges     "
          '{"add": [[0, 1]], "remove": [[2, 3]]}')
    print(f"  POST http://{host}:{port}/update_features  "
          '{"vertices": [0], "features": [[...]]}')
    print(f"  GET  http://{host}:{port}/stats")
    print(f"  GET  http://{host}:{port}/metrics")
    print(f"  GET  http://{host}:{port}/healthz")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
        server.shutdown()
    return 0


def _parse_mix(spec):
    """``predict=0.7,topk=0.3`` -> weight dict (loadgen normalizes)."""
    if spec is None:
        return None
    mix = {}
    for part in spec.split(","):
        name, _, weight = part.partition("=")
        if not _ or not name.strip():
            raise ValueError(f"bad --mix entry {part!r} (want endpoint=weight)")
        mix[name.strip()] = float(weight)
    return mix


def cmd_loadgen(args) -> int:
    from repro.serving.loadgen import (
        ARRIVALS,
        FrontendTarget,
        HttpTarget,
        build_schedule,
        run_open_loop,
    )

    try:
        mix = _parse_mix(args.mix)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    arrivals = ARRIVALS[args.arrival](args.rate, args.duration, rng)

    frontend = None
    try:
        if args.url:
            import json
            from urllib.request import urlopen

            base = args.url.rstrip("/")
            with urlopen(f"{base}/stats", timeout=10.0) as resp:
                num_vertices = json.load(resp)["engine"]["num_vertices"]
            target = HttpTarget(base, timeout_s=args.request_timeout)
        else:
            from repro.serving import ServingFrontend

            _, service = _build_service(args)
            frontend = ServingFrontend(
                service,
                num_workers=args.workers,
                max_queue=args.max_queue,
                default_timeout_s=args.request_timeout,
            )
            num_vertices = service.engine.num_vertices
            target = FrontendTarget(frontend)

        schedule = build_schedule(
            arrivals, num_vertices, rng, mix=mix,
            batch_size=args.batch_size, k=args.k,
        )
        print(f"{args.arrival} arrivals: {len(schedule)} requests over "
              f"{args.duration:g}s at {args.rate:g} req/s offered")
        report = run_open_loop(target, schedule, num_clients=args.clients)
    finally:
        if frontend is not None:
            frontend.close()
            frontend.service.close()

    s = report.summary()
    print(f"offered       : {s['offered']} requests ({s['offered_rps']:.1f} req/s)")
    print(f"achieved      : {s['ok']} ok ({s['achieved_rps']:.1f} req/s)")
    # quantile keys are omitted (not 0.0) when nothing was served
    print(f"latency (ok)  : p50 {_fmt_ms(s, 'p50_ms')}  "
          f"p99 {_fmt_ms(s, 'p99_ms')}  mean {s['mean_ms']:.2f} ms")
    print(f"rejected      : {s['rejected']} ({100 * s['reject_rate']:.1f}%)  "
          f"[queue_full {s['rejected_queue_full']}, "
          f"draining {s['rejected_draining']}]")
    print(f"timeouts      : {s['timeouts']}  errors: {s['errors']}  "
          f"bad requests: {s['bad_request']}")
    for name, ep in sorted(s["per_endpoint"].items()):
        print(f"  {name:<16s} {ep['ok']:>6d} ok / {ep['requests']:>6d}  "
              f"p50 {_fmt_ms(ep, 'p50_ms')}  p99 {_fmt_ms(ep, 'p99_ms')}")
    return 0


def _fmt_ms(d: dict, key: str) -> str:
    return f"{d[key]:.2f} ms" if key in d else "n/a"


def cmd_trace(args) -> int:
    import json

    from repro.obs.trace import (
        Tracer,
        chrome_trace,
        to_jsonl,
        validate_chrome_trace,
    )

    if args.url:
        from urllib.request import urlopen

        base = args.url.rstrip("/")
        with urlopen(f"{base}/trace", timeout=10.0) as resp:
            payload = json.load(resp)
        n = validate_chrome_trace(payload)
        with open(args.out, "w") as fh:
            json.dump(payload, fh)
        print(f"{n} trace event(s) from {base}/trace -> {args.out}")
        return 0

    from repro.serving import ServingFrontend
    from repro.serving.loadgen import (
        ARRIVALS,
        FrontendTarget,
        build_schedule,
        run_open_loop,
    )

    try:
        mix = _parse_mix(args.mix)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not 0.0 < args.sample <= 1.0:
        print("error: --sample must be in (0, 1]", file=sys.stderr)
        return 2
    tracer = Tracer(enabled=True, sample_rate=args.sample, capacity=args.buffer)
    rng = np.random.default_rng(args.seed)
    arrivals = ARRIVALS[args.arrival](args.rate, args.duration, rng)
    frontend = None
    try:
        _, service = _build_service(args)
        frontend = ServingFrontend(
            service,
            num_workers=args.workers,
            max_queue=args.max_queue,
            default_timeout_s=args.request_timeout,
            tracer=tracer,
        )
        schedule = build_schedule(
            arrivals, service.engine.num_vertices, rng, mix=mix,
            batch_size=args.batch_size, k=args.k,
        )
        print(f"tracing {len(schedule)} {args.arrival} requests over "
              f"{args.duration:g}s (sample rate {args.sample:g})")
        report = run_open_loop(
            FrontendTarget(frontend), schedule, num_clients=args.clients
        )
    finally:
        if frontend is not None:
            frontend.close()
            frontend.service.close()

    spans = tracer.export()
    payload = chrome_trace(spans)
    n = validate_chrome_trace(payload)
    with open(args.out, "w") as fh:
        json.dump(payload, fh)
    st = tracer.stats()
    s = report.summary()
    print(f"requests      : {s['ok']} ok / {s['offered']} offered")
    print(f"trace         : {n} event(s) -> {args.out}  "
          f"(sampled {st['sampled']}/{st['seen']} roots, "
          f"dropped {st['dropped']})")
    if args.jsonl:
        with open(args.jsonl, "w") as fh:
            fh.write(to_jsonl(spans))
        print(f"jsonl         : {args.jsonl}")
    for name, dec in sorted(tracer.decomposition().items()):
        parts = "  ".join(
            f"{c} {v['mean_ms']:.2f}"
            for c, v in sorted(dec["components"].items())
        )
        print(f"  {name:<16s} e2e {dec['e2e']['mean_ms']:.2f} ms | "
              f"{parts}  [attributed {dec['component_sum_mean_ms']:.2f}, "
              f"slack {dec['unattributed_mean_ms']:.2f}]")
    return 0


def cmd_check(args) -> int:
    from repro.analysis import (
        check_paths,
        load_baseline,
        render_json,
        render_text,
        split_baselined,
        write_baseline,
    )
    from repro.analysis.rules import ALL_RULES, RULES_BY_CODE

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name}")
        return 0

    rules = None
    if args.rules:
        codes = [c.strip().upper() for c in args.rules.split(",") if c.strip()]
        unknown = [c for c in codes if c not in RULES_BY_CODE]
        if unknown:
            print(f"unknown rule code(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        rules = [RULES_BY_CODE[c]() for c in codes]

    violations = check_paths(args.paths, rules=rules)

    if args.write_baseline:
        if not args.baseline:
            print("--write-baseline requires --baseline FILE", file=sys.stderr)
            return 2
        write_baseline(args.baseline, violations)
        print(f"baseline written: {args.baseline} "
              f"({len(violations)} suppression(s))")
        return 0

    baseline = set()
    if args.baseline:
        import os

        if os.path.exists(args.baseline):
            baseline = load_baseline(args.baseline)
    fresh, suppressed = split_baselined(violations, baseline)

    if args.json_output:
        print(render_json(fresh, suppressed))
    else:
        print(render_text(fresh, suppressed))
    return 1 if fresh else 0


def cmd_ingest(args) -> int:
    import os
    import time

    from repro.dyngraph import DynamicGraph, LibraState
    from repro.graph.builders import coo_to_csr

    if not 0.0 < args.stream_fraction < 1.0:
        print("error: --stream-fraction must be in (0, 1)", file=sys.stderr)
        return 2
    if args.chunk_size < 1:
        print("error: --chunk-size must be >= 1", file=sys.stderr)
        return 2
    ds = _load(args)
    src, dst, _ = ds.graph.to_coo()
    m = src.size
    n = max(ds.graph.num_vertices, ds.graph.num_src)
    # simulate arrival order: a CSR dump replayed destination-major is
    # Libra's pathological order (consecutive edges share a destination,
    # so the greedy rule piles them onto one partition) — real traffic
    # interleaves destinations, which a seeded shuffle stands in for
    order = np.random.default_rng(args.seed).permutation(m)
    src, dst = src[order], dst[order]
    split = max(1, int(m * (1.0 - args.stream_fraction)))
    base = coo_to_csr(src[:split], dst[:split], num_dst=n, num_src=n)
    dyn = DynamicGraph(base, compact_threshold=args.compact_threshold)

    resumed = args.state is not None and (
        os.path.exists(args.state) or os.path.exists(args.state + ".npz")
    )
    if resumed:
        state = LibraState.load(args.state)
        if (state.num_vertices, state.num_partitions) != (n, args.partitions):
            print(
                f"error: resumed state is ({state.num_vertices} vertices, "
                f"{state.num_partitions} partitions), dataset wants "
                f"({n}, {args.partitions})", file=sys.stderr,
            )
            return 2
        if state.seed != args.seed:
            # the seed defines the replayed arrival order; resuming the
            # assignment counter into a differently-shuffled sequence
            # would silently diverge from the batch-replay equivalence
            print(
                f"error: resumed state was built with --seed {state.seed}, "
                f"got --seed {args.seed}", file=sys.stderr,
            )
            return 2
        print(f"resumed LibraState: {state.num_assigned}/{m} edges assigned")
    else:
        state = LibraState(n, args.partitions, seed=args.seed)
    # the edge sequence is deterministic, so the state's assignment
    # counter is exactly the resume point in it
    start = min(state.num_assigned, m)
    if start < split:
        t0 = time.perf_counter()
        state.assign(src[start:split], dst[start:split])
        bulk_s = time.perf_counter() - t0
        print(
            f"bulk ingest   : {split - start} base edges in {bulk_s:.2f}s "
            f"({(split - start) / max(bulk_s, 1e-9):,.0f} edges/s)"
        )
    if state.baseline_rf is None:
        state.set_baseline()

    stream_from = max(start, split)
    # dyn replays the already-assigned stream prefix first (in stream
    # order, so the merged view matches a from-scratch rebuild); only
    # the Libra assignment itself is resumable
    if stream_from > split:
        dyn.add_edges(src[split:stream_from], dst[split:stream_from])
    t0 = time.perf_counter()
    for lo in range(stream_from, m, args.chunk_size):
        hi = min(lo + args.chunk_size, m)
        state.assign(src[lo:hi], dst[lo:hi])
        dyn.add_edges(src[lo:hi], dst[lo:hi])
    stream_s = time.perf_counter() - t0
    streamed = m - stream_from

    print(f"streamed      : {streamed} edges in {stream_s:.2f}s "
          f"({streamed / max(stream_s, 1e-9):,.0f} edges/s, "
          f"chunks of {args.chunk_size})")
    print(f"loads         : {state.load.tolist()}")
    print(f"replication   : {state.replication_factor:.3f} "
          f"(baseline {state.baseline_rf:.3f}, drift {100 * state.drift():+.1f}%)")
    print(f"repartition?  : "
          f"{'recommended' if state.should_repartition(args.drift_tolerance) else 'no'}"
          f" (tolerance {100 * args.drift_tolerance:.0f}%)")
    print(f"delta state   : {dyn.num_delta_edges} delta edges, "
          f"{dyn.num_compactions} compactions, "
          f"delta fraction {dyn.delta_fraction:.3f}")

    merged = dyn.csr()
    rebuilt = coo_to_csr(src, dst, num_dst=n, num_src=n)
    ok = (
        np.array_equal(merged.indptr, rebuilt.indptr)
        and np.array_equal(merged.indices, rebuilt.indices)
        and np.array_equal(merged.edge_ids, rebuilt.edge_ids)
    )
    print(f"compact check : merged view {'==' if ok else '!='} from-scratch rebuild")
    if args.state:
        state.save(args.state)
        print(f"state written : {args.state}")
    return 0 if ok else 1


COMMANDS = {
    "info": cmd_info,
    "partition": cmd_partition,
    "train": cmd_train,
    "sample": cmd_sample,
    "predict": cmd_predict,
    "serve": cmd_serve,
    "ingest": cmd_ingest,
    "loadgen": cmd_loadgen,
    "trace": cmd_trace,
    "check": cmd_check,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
