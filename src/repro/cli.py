"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``       dataset stand-in statistics (Table 2 style).
``partition``  run Libra (or a baseline) and report partition quality.
``train``      full-batch training, single-socket or distributed with any
               DRPA algorithm; ``--checkpoint`` saves restartable state,
               ``--resume`` continues from it.
``sample``     mini-batch (Dist-DGL style) training.
``predict``    one-shot predictions from a checkpoint.
``serve``      HTTP prediction service (precompute + micro-batched
               lookups + LRU result cache) over a checkpoint.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DistGNN reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="dataset statistics")
    _dataset_args(p_info)

    p_part = sub.add_parser("partition", help="partition a dataset graph")
    _dataset_args(p_part)
    p_part.add_argument("--partitions", type=int, default=4)
    p_part.add_argument(
        "--partitioner", choices=("libra", "random", "hash"), default="libra"
    )

    p_train = sub.add_parser("train", help="full-batch training")
    _dataset_args(p_train)
    p_train.add_argument("--epochs", type=int, default=50)
    p_train.add_argument("--lr", type=float, default=0.01)
    p_train.add_argument("--partitions", type=int, default=1)
    p_train.add_argument(
        "--algorithm", default="cd-0", help="0c | cd-0 | cd-<r> (when partitions > 1)"
    )
    p_train.add_argument(
        "--compression", choices=("none", "fp16", "bf16"), default="none"
    )
    p_train.add_argument(
        "--backend", choices=("sim", "shm"), default="sim",
        help="distributed execution backend: in-process lockstep simulator "
        "or one OS process per rank over shared memory (partitions > 1)",
    )
    p_train.add_argument(
        "--num-threads", type=int, default=None,
        help="kernel worker threads: > 1 runs every aggregation on the "
        "parallel execution engine (bit-identical results)",
    )
    p_train.add_argument("--checkpoint", default=None, help="save final state here")
    p_train.add_argument(
        "--resume", default=None, metavar="CKPT",
        help="resume single-socket training from a checkpoint; --epochs "
        "is the total budget, so an epoch-k checkpoint runs epochs k..N",
    )

    p_sample = sub.add_parser("sample", help="mini-batch training")
    _dataset_args(p_sample)
    p_sample.add_argument("--epochs", type=int, default=10)
    p_sample.add_argument("--lr", type=float, default=0.01)
    p_sample.add_argument("--batch-size", type=int, default=256)
    p_sample.add_argument(
        "--fanouts", type=int, nargs="+", default=None,
        help="one fanout per layer (default: 10 per layer)",
    )

    p_pred = sub.add_parser("predict", help="one-shot checkpoint predictions")
    _dataset_args(p_pred)
    p_pred.add_argument("--checkpoint", required=True)
    p_pred.add_argument(
        "--vertices", required=True,
        help="comma-separated vertex ids, e.g. 0,17,42",
    )
    p_pred.add_argument("--k", type=int, default=3, help="top-k classes to print")
    p_pred.add_argument(
        "--num-threads", type=int, default=None,
        help="worker threads for the precompute pass",
    )

    p_serve = sub.add_parser("serve", help="HTTP prediction service")
    _dataset_args(p_serve)
    p_serve.add_argument("--checkpoint", required=True)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument(
        "--cache-size", type=int, default=4096,
        help="LRU result-cache capacity in vertices (0 disables)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=256,
        help="micro-batcher coalescing limit in vertices (0 disables batching)",
    )
    p_serve.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="micro-batcher window: how long the first request of a "
        "batch is held open for followers",
    )
    p_serve.add_argument(
        "--num-threads", type=int, default=None,
        help="worker threads for precompute and refresh passes",
    )
    return parser


def _dataset_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dataset", default="ogbn-products")
    p.add_argument("--scale", type=float, default=0.15)
    p.add_argument("--seed", type=int, default=0)


def _load(args):
    from repro.graph.datasets import load_dataset

    return load_dataset(args.dataset, scale=args.scale, seed=args.seed)


def cmd_info(args) -> int:
    from repro.graph.datasets import PAPER_DATASET_STATS
    from repro.graph.utils import average_degree, density

    ds = _load(args)
    print(ds.summary())
    print(f"density      : {density(ds.graph):.3e}")
    print(f"avg degree   : {average_degree(ds.graph):.1f}")
    paper = PAPER_DATASET_STATS.get(ds.name)
    if paper:
        print(
            f"paper scale  : |V|={paper.num_vertices:,} |E|={paper.num_edges:,} "
            f"d={paper.num_features} classes={paper.num_classes}"
        )
    return 0


def cmd_partition(args) -> int:
    from repro.partition import (
        build_partitions,
        hash_edge_partition,
        libra_partition,
        partition_stats,
        random_edge_partition,
    )

    ds = _load(args)
    if args.partitioner == "libra":
        asn = libra_partition(ds.graph, args.partitions, seed=args.seed)
    elif args.partitioner == "random":
        asn = random_edge_partition(ds.graph, args.partitions, seed=args.seed)
    else:
        asn = hash_edge_partition(ds.graph, args.partitions)
    st = partition_stats(build_partitions(ds.graph, asn, args.partitions))
    print(f"{args.partitioner} over {ds.name} ({args.partitions} partitions):")
    print(f"  replication factor : {st.replication_factor:.3f}")
    print(f"  edge balance       : {st.edge_balance:.3f}")
    print(f"  split vertices     : {100 * st.split_vertex_fraction:.1f}%")
    print(f"  edges min/max      : {st.min_edges} / {st.max_edges}")
    return 0


def cmd_train(args) -> int:
    from repro.core import DistributedTrainer, TrainConfig, Trainer
    from repro.core.checkpoint import load_checkpoint, save_checkpoint, training_meta

    ds = _load(args)
    cfg = TrainConfig(
        learning_rate=args.lr,
        eval_every=max(args.epochs // 5, 1),
        seed=args.seed,
        compression=args.compression,
        backend=args.backend,
        num_threads=args.num_threads,
    ).for_dataset(ds.name)
    if args.partitions <= 1:
        trainer = Trainer(ds, cfg)
        start_epoch = 0
        if args.resume:
            start_epoch, _ = load_checkpoint(
                args.resume, trainer.model, trainer.optimizer
            )
            print(f"resumed from epoch {start_epoch} ({args.resume})")
        result = trainer.fit(
            num_epochs=args.epochs, verbose=True, start_epoch=start_epoch
        )
        model, opt = trainer.model, trainer.optimizer
    else:
        if args.resume:
            print("error: --resume supports single-socket training only "
                  "(--partitions 1)", file=sys.stderr)
            return 2
        trainer = DistributedTrainer(
            ds, args.partitions, algorithm=args.algorithm, config=cfg
        )
        result = trainer.fit(num_epochs=args.epochs, verbose=True)
        model, opt = trainer.ranks[0].model, trainer.ranks[0].optimizer
        print(f"replication factor : {result.replication_factor:.2f}")
        print(f"total comm         : {result.total_comm_bytes / 1e6:.1f} MB")
    print(f"final test accuracy: {result.final_test_acc:.4f}")
    if args.checkpoint:
        save_checkpoint(
            args.checkpoint, model, opt, epoch=args.epochs, extra=training_meta(cfg)
        )
        print(f"checkpoint written : {args.checkpoint}")
    return 0


def cmd_sample(args) -> int:
    from repro.core import TrainConfig
    from repro.sampling import MiniBatchTrainer

    ds = _load(args)
    cfg = TrainConfig(
        learning_rate=args.lr, eval_every=0, seed=args.seed
    ).for_dataset(ds.name)
    fanouts = args.fanouts or [10] * cfg.num_layers
    trainer = MiniBatchTrainer(
        ds, fanouts=fanouts, batch_size=args.batch_size, config=cfg
    )
    result = trainer.fit(num_epochs=args.epochs, verbose=True)
    print(f"final test accuracy: {result.final_test_acc:.4f}")
    print(f"sampled work       : {trainer.total_work_ops / 1e9:.3f} B ops")
    return 0


def cmd_predict(args) -> int:
    from repro.serving import InferenceEngine

    ds = _load(args)
    try:
        vertices = [int(v) for v in args.vertices.replace(",", " ").split()]
    except ValueError:
        print(f"error: bad --vertices {args.vertices!r}", file=sys.stderr)
        return 2
    engine = InferenceEngine.from_checkpoint(
        args.checkpoint, ds, num_threads=args.num_threads
    )
    engine.precompute()
    classes, scores = engine.topk(vertices, k=args.k)
    labels = engine.predict_labels(vertices)
    for v, label, crow, srow in zip(vertices, labels, classes, scores):
        ranked = "  ".join(f"{c}:{s:.3f}" for c, s in zip(crow, srow))
        print(f"vertex {v:>8d}  label {label:>4d}  top{args.k} {ranked}")
    return 0


def cmd_serve(args) -> int:  # pragma: no cover - interactive loop
    from repro.serving import InferenceEngine, PredictionServer, PredictionService, ResultCache

    ds = _load(args)
    engine = InferenceEngine.from_checkpoint(
        args.checkpoint, ds, num_threads=args.num_threads
    )
    engine.precompute()
    service = PredictionService(
        engine,
        cache=ResultCache(args.cache_size) if args.cache_size > 0 else None,
        batch=args.max_batch > 0,
        max_batch=max(args.max_batch, 1),
        max_wait_ms=args.max_wait_ms,
    )
    server = PredictionServer(service, host=args.host, port=args.port, verbose=True)
    host, port = server.address
    print(f"serving {ds.name} ({engine.model_kind}, {engine.num_vertices} vertices)")
    print(f"  POST http://{host}:{port}/predict   "
          '{"vertices": [0, 1], "k": 3}')
    print(f"  GET  http://{host}:{port}/stats")
    print(f"  GET  http://{host}:{port}/healthz")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
        server.shutdown()
    return 0


COMMANDS = {
    "info": cmd_info,
    "partition": cmd_partition,
    "train": cmd_train,
    "sample": cmd_sample,
    "predict": cmd_predict,
    "serve": cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
