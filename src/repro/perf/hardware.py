"""CPU socket presets matching the paper's testbeds (Section 6.1)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SocketSpec:
    """One CPU socket's performance envelope."""

    name: str
    cores: int
    frequency_Hz: float
    #: sustained memory bandwidth (bytes/s); the paper quotes 128 GB/s
    #: theoretical peak for the 8280 machine.
    mem_bw_Bps: float
    #: fp32 FMA lanes per core (AVX-512: 2 FMA units x 16 lanes).
    simd_fp32_per_core: int = 64
    #: achievable fraction of peak flops for SpMM-like kernels.
    flops_efficiency: float = 0.25
    #: achievable fraction of peak bandwidth for gather-heavy kernels.
    bw_efficiency: float = 0.75
    #: cores reserved for the communication library ("two cores on each
    #: socket are dedicated to OneCCL").
    reserved_cores: int = 0

    @property
    def usable_cores(self) -> int:
        return max(self.cores - self.reserved_cores, 1)

    @property
    def peak_flops(self) -> float:
        """Peak fp32 flops of the usable cores."""
        return self.usable_cores * self.frequency_Hz * self.simd_fp32_per_core

    @property
    def effective_flops(self) -> float:
        return self.peak_flops * self.flops_efficiency

    @property
    def effective_bw(self) -> float:
        return self.mem_bw_Bps * self.bw_efficiency


#: Single-socket testbed: Xeon Platinum 8280 @2.70 GHz, 28 cores, 128 GB/s.
XEON_8280 = SocketSpec(
    name="xeon-8280",
    cores=28,
    frequency_Hz=2.70e9,
    mem_bw_Bps=128e9,
)

#: Cluster socket: Xeon Platinum 9242 @2.30 GHz, 48 cores, ~140 GB/s/socket,
#: two cores reserved for OneCCL in multi-socket runs.
XEON_9242 = SocketSpec(
    name="xeon-9242",
    cores=48,
    frequency_Hz=2.30e9,
    mem_bw_Bps=140e9,
    reserved_cores=2,
)
