"""Analytic performance models.

The paper's cluster results (Figs. 5–6, Tables 6–9) are wall-clock
measurements on 64 dual-socket Xeon 9242 nodes.  We reproduce their
*shape* by executing the real distributed algorithms in-process (exact
byte/op counts) and converting those counts into modelled time with:

- :mod:`repro.perf.hardware` — socket presets (Xeon 8280 / 9242).
- :mod:`repro.perf.roofline` — memory-BW/compute roofline per socket.
- :mod:`repro.perf.workmodel` — the paper's own aggregation op counting
  (Tables 7/8: vertices x degree x feature width).
- :mod:`repro.perf.epochmodel` — end-to-end epoch time for each
  algorithm/socket count (Fig. 5) and its LAT/RAT split (Fig. 6).
- :mod:`repro.perf.memory` — per-partition peak memory (Table 6).
- :mod:`repro.perf.minibatch` — the Dist-DGL neighbourhood-sampling work
  model used in the comparison tables (7 and 9).
"""

from repro.perf.hardware import SocketSpec, XEON_8280, XEON_9242
from repro.perf.roofline import ap_kernel_time, roofline_time
from repro.perf.workmodel import LayerWork, full_batch_work, total_work_bops
from repro.perf.epochmodel import EpochBreakdown, EpochModel, ScalingPoint
from repro.perf.memory import MemoryModel, graphsage_memory_bytes
from repro.perf.minibatch import (
    MinibatchHop,
    minibatch_epoch_work,
    sampled_frontier_sizes,
)

__all__ = [
    "SocketSpec",
    "XEON_8280",
    "XEON_9242",
    "roofline_time",
    "ap_kernel_time",
    "LayerWork",
    "full_batch_work",
    "total_work_bops",
    "EpochModel",
    "EpochBreakdown",
    "ScalingPoint",
    "MemoryModel",
    "graphsage_memory_bytes",
    "MinibatchHop",
    "minibatch_epoch_work",
    "sampled_frontier_sizes",
]
