"""Socket roofline: kernel time = max(memory time, compute time).

The paper's single-socket analysis (Section 4.2, Fig. 3) shows a direct
correlation between memory IO and AP execution time — i.e. the AP runs on
the bandwidth roof.  The model therefore charges

    time = max(bytes / effective_BW, flops / effective_flops)
           * imbalance * instruction_factor

where ``imbalance`` comes from the scheduling simulator and
``instruction_factor`` models the scalar-code overhead that LIBXSMM's
JITed kernels remove (Fig. 4's "LR LXMM" step).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.hardware import SocketSpec

#: Instruction-overhead multiplier of the non-reordered (scalar) inner
#: loop relative to the JITed/vectorized one.  Calibrated so the Fig. 4
#: LR-LXMM step lands near the paper's observed gains (~1.4-2x).
SCALAR_INSTRUCTION_FACTOR = 1.8


@dataclass(frozen=True)
class KernelCost:
    """Inputs of one kernel-time query."""

    bytes_moved: float
    flops: float
    imbalance: float = 1.0
    instruction_factor: float = 1.0


def roofline_time(cost: KernelCost, socket: SocketSpec) -> float:
    """Modelled kernel time on one socket (seconds)."""
    mem_t = cost.bytes_moved / socket.effective_bw
    cmp_t = cost.flops / socket.effective_flops
    return max(mem_t, cmp_t * cost.instruction_factor) * cost.imbalance


def ap_kernel_time(
    num_edges: float,
    feature_dim: int,
    bytes_moved: float,
    socket: SocketSpec,
    imbalance: float = 1.0,
    reordered: bool = True,
) -> float:
    """Time of one AP invocation.

    ``flops = num_edges * feature_dim`` (one add per edge element for the
    sum reducer — the unit Tables 7/8 count work in).
    """
    return roofline_time(
        KernelCost(
            bytes_moved=bytes_moved,
            flops=num_edges * feature_dim,
            imbalance=imbalance,
            instruction_factor=1.0 if reordered else SCALAR_INSTRUCTION_FACTOR,
        ),
        socket,
    )


def dense_layer_time(
    num_rows: float, in_dim: int, out_dim: int, socket: SocketSpec
) -> float:
    """Time of the per-layer MLP (GEMM): 2*N*d_in*d_out flops, streaming IO."""
    flops = 2.0 * num_rows * in_dim * out_dim
    bytes_moved = 4.0 * num_rows * (in_dim + out_dim)
    # GEMMs run much closer to peak than SpMM; use a fixed 60% efficiency.
    cmp_t = flops / (socket.peak_flops * 0.6)
    mem_t = bytes_moved / socket.effective_bw
    return max(cmp_t, mem_t)
