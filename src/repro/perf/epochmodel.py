"""End-to-end epoch-time model (Figs. 5 and 6).

The model composes, per layer and per partition:

- **LAT** (local aggregation time): AP roofline over the partition's
  edges at the layer's feature width;
- **RAT** (remote aggregation time): the gather/scatter pre/post-
  processing of the split-vertex exchange (memory-bound at gather
  efficiency) plus — for cd-0, whose communication is exposed — the
  network time of the up+down volume.  cd-r overlaps the wire time
  ("a negligible amount of time is spent waiting", Section 6.3) and
  touches only ``1/r`` of the trees per epoch;
- MLP time (GEMM roofline) and the AllReduce of the weight gradients;
- a backward multiplier (one more AP pass per layer plus GEMM adjoints).

Structural inputs (replication factor, split fraction, edge balance) come
from *actually partitioning* the scaled stand-in graphs with Libra; the
|V|/|E|/d scales come from the paper's Table 2 so the modelled times are
in paper-comparable seconds.  Single-socket runs that exceed one NUMA
domain's memory get the paper's observed NUMA derate (Section 6.3 notes
both Proteins and OGBN-Papers single-socket runs are slowed this way).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.comm.netmodel import HDR_200G, NetworkModel
from repro.perf.hardware import SocketSpec, XEON_9242
from repro.perf.roofline import ap_kernel_time, dense_layer_time

FLOAT_BYTES = 4
#: Gather/scatter pre/post-processing runs at a fraction of stream BW
#: (random row access); calibrated to put OGBN-Papers' RAT above its LAT
#: as in Fig. 6.
GATHER_EFFICIENCY = 0.25
#: Memory local to one socket (paper: "98 GB of memory per socket");
#: footprints beyond this spill into remote NUMA domains.
NODE_MEMORY_BYTES = 98e9
#: Derate applied when a run's footprint spills across NUMA domains;
#: the second tier covers runs several times the socket's local memory
#: (the paper's OGBN-Papers single socket needs 1.4 TB on a 98 GB socket).
NUMA_BW_DERATE = 0.55
NUMA_BW_DERATE_SEVERE = 0.35
NUMA_SEVERE_FACTOR = 3.0
#: Fixed per-AP-invocation overhead (OpenMP fork/join, small-matrix
#: inefficiency); bounds strong-scaling as partitions shrink.
KERNEL_OVERHEAD_S = 4e-3
#: Effective fraction of line rate the synchronous split-vertex AlltoAllv
#: sustains.  Below the generic collective efficiency because the exchange
#: moves scattered per-vertex rows (poor coalescing) — this is why the
#: paper's cd-0 barely scales on Reddit.  A single constant cannot match
#: all three fabrics' residuals exactly; 0.3 centres the family (see
#: EXPERIMENTS.md for per-dataset deviation).
EXCHANGE_EFFICIENCY = 0.3


@dataclass(frozen=True)
class DatasetScale:
    """Paper-scale workload parameters."""

    name: str
    num_vertices: float
    num_edges: float
    feature_dim: int
    hidden_dims: Sequence[int]
    num_classes: int
    #: measured f_V cache reuse of the optimized kernel (from cachesim).
    cache_reuse: float = 4.0

    @property
    def layer_widths(self) -> List[int]:
        return [self.feature_dim] + list(self.hidden_dims)

    @property
    def out_widths(self) -> List[int]:
        return list(self.hidden_dims) + [self.num_classes]


@dataclass(frozen=True)
class PartitionProfile:
    """Structural measurements at one partition count (from Libra on the
    stand-in, assumed scale-free)."""

    num_partitions: int
    replication_factor: float
    split_fraction: float  # split vertices / partition vertices
    edge_balance: float = 1.0


@dataclass
class EpochBreakdown:
    """Per-epoch modelled times (seconds) for one configuration."""

    algorithm: str
    num_partitions: int
    lat_forward: float
    rat_pre_post: float
    rat_comm: float
    mlp: float
    backward: float
    allreduce: float

    @property
    def rat_total(self) -> float:
        return self.rat_pre_post + self.rat_comm

    @property
    def total(self) -> float:
        return (
            self.lat_forward
            + self.rat_total
            + self.mlp
            + self.backward
            + self.allreduce
        )


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a Fig. 5 curve."""

    algorithm: str
    num_partitions: int
    epoch_time_s: float
    speedup_vs_single: float


class EpochModel:
    """Epoch-time model for one dataset across partition counts."""

    def __init__(
        self,
        scale: DatasetScale,
        profiles: Dict[int, PartitionProfile],
        socket: SocketSpec = XEON_9242,
        network: NetworkModel = HDR_200G,
    ):
        self.scale = scale
        self.profiles = dict(profiles)
        self.socket = socket
        self.network = network

    # -- memory-driven NUMA derate ---------------------------------------------

    def _numa_factor(self, num_partitions: int) -> float:
        """BW derate when the per-partition footprint exceeds one NUMA
        domain (paper: Papers at 1/32/64 sockets, Proteins at 1)."""
        s = self.scale
        prof = self._profile(num_partitions)
        n_p = s.num_vertices * prof.replication_factor / num_partitions
        e_p = s.num_edges / num_partitions
        widths = sum(s.layer_widths) + sum(s.out_widths)
        # activations retained for backprop (x2 for gradient buffers and
        # optimizer state) + CSR structure (~12 B/edge)
        footprint = 2.0 * n_p * widths * FLOAT_BYTES + e_p * 12.0
        if footprint > NUMA_SEVERE_FACTOR * NODE_MEMORY_BYTES:
            return 1.0 / NUMA_BW_DERATE_SEVERE
        if footprint > NODE_MEMORY_BYTES:
            return 1.0 / NUMA_BW_DERATE
        return 1.0

    def _profile(self, num_partitions: int) -> PartitionProfile:
        if num_partitions in self.profiles:
            return self.profiles[num_partitions]
        if num_partitions == 1:
            return PartitionProfile(1, 1.0, 0.0)
        raise KeyError(
            f"no partition profile for P={num_partitions}; "
            f"have {sorted(self.profiles)}"
        )

    # -- per-configuration breakdown -----------------------------------------------

    def breakdown(self, num_partitions: int, algorithm: str) -> EpochBreakdown:
        s = self.scale
        prof = self._profile(num_partitions)
        numa = self._numa_factor(num_partitions)
        algo = algorithm.lower()
        delay = _delay_of(algo)

        edges_p = s.num_edges / num_partitions * prof.edge_balance
        verts_p = s.num_vertices * prof.replication_factor / num_partitions
        split_p = verts_p * prof.split_fraction

        lat = 0.0
        pre_post = 0.0
        comm = 0.0
        mlp = 0.0
        for w_in, w_out in zip(s.layer_widths, s.out_widths):
            vec = w_in * FLOAT_BYTES
            bytes_moved = (
                edges_p / max(s.cache_reuse, 1.0) * vec  # f_V gathers
                + 2.0 * verts_p * vec  # f_O read+write
                + edges_p * 8.0  # CSR indices
            ) * numa
            lat += (
                ap_kernel_time(
                    edges_p, w_in, bytes_moved, self.socket, reordered=True
                )
                + KERNEL_OVERHEAD_S
            )
            mlp += dense_layer_time(verts_p, w_in, w_out, self.socket)
            if algo != "0c" and split_p > 0:
                active = split_p / max(delay, 1)
                row_bytes = active * vec
                # gather + scatter on both ends, up and down = 4 row passes
                pre_post += (
                    4.0 * row_bytes / (self.socket.mem_bw_Bps * GATHER_EFFICIENCY)
                ) * numa
                if algo in ("cd-0", "cd0"):
                    # synchronous: the up+down wire time is exposed, at the
                    # scattered-row exchange rate (see EXCHANGE_EFFICIENCY)
                    wire = self.network.bandwidth_Bps * EXCHANGE_EFFICIENCY
                    comm += (
                        self.network.latency_s * num_partitions
                        + 2.0 * row_bytes / wire
                    )

        allreduce = 0.0
        if num_partitions > 1:
            w_elems = sum(a * b for a, b in zip(s.layer_widths, s.out_widths))
            allreduce = self.network.collective_time(
                2.0 * w_elems * FLOAT_BYTES
            )

        # Backward: one AP transpose pass per layer except layer 0, plus
        # two GEMM adjoints per layer; gradient sync doubles cd-0's comm.
        n_layers = len(s.layer_widths)
        backward = lat * (n_layers - 1) / n_layers + 2.0 * mlp
        if algo in ("cd-0", "cd0"):
            backward += comm + pre_post
        return EpochBreakdown(
            algorithm=algorithm,
            num_partitions=num_partitions,
            lat_forward=lat,
            rat_pre_post=pre_post,
            rat_comm=comm,
            mlp=mlp,
            backward=backward,
            allreduce=allreduce,
        )

    # -- Fig. 5 curves ---------------------------------------------------------------

    def single_socket_time(self) -> float:
        """Optimized single-socket epoch time (the speedup denominator)."""
        return self.breakdown(1, "0c").total

    def scaling_curve(
        self, partition_counts: Sequence[int], algorithms: Sequence[str]
    ) -> List[ScalingPoint]:
        base = self.single_socket_time()
        points = []
        for p in partition_counts:
            for algo in algorithms:
                t = self.breakdown(p, algo).total
                points.append(
                    ScalingPoint(
                        algorithm=algo,
                        num_partitions=p,
                        epoch_time_s=t,
                        speedup_vs_single=base / t if t > 0 else float("inf"),
                    )
                )
        return points


def _delay_of(algo: str) -> int:
    if algo.startswith("cd-"):
        return max(int(algo[3:]), 1) if algo[3:].isdigit() else 1
    return 1


def profiles_from_standin(
    graph,
    partition_counts: Sequence[int],
    seed: int = 0,
) -> Dict[int, PartitionProfile]:
    """Measure partition profiles by running Libra on a stand-in graph.

    The replication-factor curve of a vertex-cut partitioner depends on
    degree structure rather than absolute size, so stand-in measurements
    transfer to paper scale (our Table 4 reproduction validates this).
    """
    from repro.partition import build_partitions, libra_partition, partition_stats

    profiles = {}
    for p in partition_counts:
        asn = libra_partition(graph, p, seed=seed)
        parted = build_partitions(graph, asn, p)
        st = partition_stats(parted)
        profiles[p] = PartitionProfile(
            num_partitions=p,
            replication_factor=st.replication_factor,
            split_fraction=st.avg_split_fraction_per_partition,
            edge_balance=st.edge_balance,
        )
    return profiles
