"""Dist-DGL neighbourhood-sampling work model (Tables 7 and 9).

Dist-DGL trains with mini-batches sampled by fan-out: starting from a
batch of training vertices (hop-0), each hop samples up to ``fanout``
neighbours per frontier vertex and de-duplicates the union.  Work per hop
is counted with the paper's metric (vertices x degree x feats), where the
"degree" of a sampled hop is its fan-out.

``sampled_frontier_sizes`` also runs the *actual* sampling procedure on a
graph so the closed-form de-dup model can be validated empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.perf.workmodel import (
    LayerWork,
    PRODUCTS_TRAIN_VERTICES,
)


@dataclass(frozen=True)
class MinibatchHop:
    """One sampled hop (paper Table 7 row)."""

    hop: int
    num_vertices: float
    fanout: int
    feature_dim: int

    @property
    def ops(self) -> float:
        return self.num_vertices * self.fanout * self.feature_dim

    @property
    def b_ops(self) -> float:
        return self.ops / 1e9


def expected_unique(draws: float, population: float) -> float:
    """Expected distinct values when ``draws`` samples hit ``population``
    uniformly (birthday-style de-dup model)."""
    if population <= 0:
        return 0.0
    return population * (1.0 - np.exp(-draws / population))


def minibatch_hops(
    batch_size: int,
    fanouts: Sequence[int],
    feature_dims: Sequence[int],
    population: float,
) -> List[MinibatchHop]:
    """Closed-form per-hop table for one mini-batch.

    ``fanouts`` ordered hop-0 outward (paper: 15, 10, 5);
    ``feature_dims`` the input width of each hop's aggregation
    (256, 256, 100).  Frontier growth de-duplicates against the vertex
    population.
    """
    if len(fanouts) != len(feature_dims):
        raise ValueError("fanouts and feature_dims must align")
    hops: List[MinibatchHop] = []
    frontier = float(batch_size)
    for i, (fanout, dim) in enumerate(zip(fanouts, feature_dims)):
        hops.append(
            MinibatchHop(
                hop=i, num_vertices=frontier, fanout=fanout, feature_dim=dim
            )
        )
        frontier = expected_unique(frontier * fanout, population)
    return hops


def minibatch_epoch_work(
    batch_size: int,
    fanouts: Sequence[int],
    feature_dims: Sequence[int],
    population: float,
    train_vertices: int = PRODUCTS_TRAIN_VERTICES,
    num_sockets: int = 1,
) -> Tuple[List[MinibatchHop], float, int]:
    """(hops of one batch, epoch B Ops per socket, batches per socket).

    Training vertices are split evenly across sockets; each socket runs
    ``ceil(train/sockets/batch)`` mini-batches per epoch (Table 7 reports
    99 batches at 1 socket, 7 at 16 for OGBN-Products).
    """
    hops = minibatch_hops(batch_size, fanouts, feature_dims, population)
    per_batch = sum(h.b_ops for h in hops)
    batches = int(np.ceil(train_vertices / num_sockets / batch_size))
    return hops, per_batch * batches, batches


def sampled_frontier_sizes(
    graph: CSRGraph,
    seeds: np.ndarray,
    fanouts: Sequence[int],
    seed: int = 0,
) -> List[int]:
    """Empirical de-duplicated frontier sizes of fan-out sampling.

    Returns ``[len(hop0), len(hop1), ...]`` including the seed set.  Used
    to validate :func:`expected_unique` against real graph structure.
    """
    rng = np.random.default_rng(seed)
    frontier = np.unique(np.asarray(seeds))
    sizes = [int(frontier.size)]
    for fanout in fanouts:
        nxt: List[np.ndarray] = []
        for v in frontier:
            nbrs = graph.neighbors(int(v))
            if nbrs.size == 0:
                continue
            if nbrs.size > fanout:
                nbrs = rng.choice(nbrs, size=fanout, replace=False)
            nxt.append(nbrs)
        if nxt:
            frontier = np.unique(np.concatenate(nxt))
        else:
            frontier = np.zeros(0, dtype=np.int64)
        sizes.append(int(frontier.size))
    return sizes


#: Table 7 configuration for OGBN-Products.
PRODUCTS_BATCH_SIZE = 2000
PRODUCTS_FANOUTS = (15, 10, 5)
PRODUCTS_MB_FEATURE_DIMS = (256, 256, 100)
