"""Aggregation work counting — the paper's own metric (Tables 7/8).

"The total work per hop is calculated as the product of number of
vertices, feature size, and average vertex degree" (Section 6.3).  For
full-batch DistGNN every hop touches every partition vertex with its full
average degree; feature width per hop follows the model shape
(f, h1, h2 = 100, 256, 256 for OGBN-Products).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class LayerWork:
    """Work of one hop/layer of aggregation."""

    hop: int
    num_vertices: float
    avg_degree: float
    feature_dim: int

    @property
    def ops(self) -> float:
        """vertices x degree x feats (the paper's op count)."""
        return self.num_vertices * self.avg_degree * self.feature_dim

    @property
    def b_ops(self) -> float:
        return self.ops / 1e9


def full_batch_work(
    num_vertices: float,
    avg_degree: float,
    feature_dims: Sequence[int],
) -> List[LayerWork]:
    """Per-hop work of full-batch training on one partition (Table 8).

    ``feature_dims`` is ordered hop-(L-1) .. hop-0 input widths; for the
    paper's 3-layer GraphSAGE on OGBN-Products that is ``(100, 256, 256)``.
    """
    layers = []
    n_hops = len(feature_dims)
    for i, dim in enumerate(feature_dims):
        hop = n_hops - 1 - i
        layers.append(
            LayerWork(
                hop=hop,
                num_vertices=num_vertices,
                avg_degree=avg_degree,
                feature_dim=dim,
            )
        )
    return layers


def total_work_bops(layers: Sequence[LayerWork]) -> float:
    """Total billions of ops across hops."""
    return sum(l.b_ops for l in layers)


#: OGBN-Products parameters used in Tables 7-9.
PRODUCTS_NUM_VERTICES = 2_449_029
PRODUCTS_AVG_DEGREE = 51.5
PRODUCTS_FEATURE_DIMS = (100, 256, 256)
PRODUCTS_TRAIN_VERTICES = 196_615


#: Libra replication factors for OGBN-Products (paper Table 4).
PRODUCTS_REPLICATION = {1: 1.0, 2: 1.49, 4: 2.16, 8: 2.98, 16: 3.90, 32: 4.85, 64: 5.74}


def products_partition_vertices(num_sockets: int) -> float:
    """Per-partition vertex count *including clones* (paper's 596,499 at
    16 sockets = |V| x rf(16) / 16)."""
    rf = PRODUCTS_REPLICATION.get(num_sockets, 1.0)
    return PRODUCTS_NUM_VERTICES * rf / num_sockets


def products_full_batch_bops(num_sockets: int = 1) -> float:
    """Table 8's total B Ops per socket at a given socket count.

    The paper charges every partition vertex (clones included) the full
    average degree — its own accounting convention, which we match.
    """
    verts = products_partition_vertices(num_sockets)
    layers = full_batch_work(verts, PRODUCTS_AVG_DEGREE, PRODUCTS_FEATURE_DIMS)
    return total_work_bops(layers)
