"""Per-partition memory model (paper Table 6).

Section 6.3 enumerates GraphSAGE's memory: (1) weight matrices, (2) the
input feature matrix ``N x f``, (3) aggregation outputs per layer, (4)
MLP outputs per layer — all intermediates retained for backprop — plus
communication buffers, which differ per algorithm: cd-0 stages one
layer's split-vertex exchange at a time, while cd-r keeps every layer's
delayed messages in flight across the pipeline, so cd-r > cd-0 > 0c
(Table 6: 311 / 199 / 180 GB at 32 partitions for OGBN-Papers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

FLOAT_BYTES = 4


@dataclass(frozen=True)
class MemoryModel:
    """Memory breakdown of one partition (bytes)."""

    weights: float
    input_features: float
    activations: float
    gradients: float
    optimizer_state: float
    comm_buffers: float

    @property
    def total(self) -> float:
        return (
            self.weights
            + self.input_features
            + self.activations
            + self.gradients
            + self.optimizer_state
            + self.comm_buffers
        )

    @property
    def total_GB(self) -> float:
        return self.total / 2**30


def graphsage_memory_bytes(
    num_partition_vertices: float,
    feature_dim: int,
    hidden_dims: Sequence[int],
    num_classes: int,
    algorithm: str = "cd-0",
    split_fraction: float = 0.0,
    optimizer: str = "adam",
) -> MemoryModel:
    """Memory of one partition running 3-layer GraphSAGE (paper's model).

    Parameters mirror Section 6.3's notation: ``N`` partition vertices,
    ``f`` features, ``h1, h2`` hidden sizes, ``l`` labels.
    """
    n = float(num_partition_vertices)
    f = feature_dim
    dims = list(hidden_dims)
    l = num_classes
    widths = [f] + dims  # input width of each layer
    out_widths = dims + [l]

    # (1) weights: f x h1, h1 x h2, h2 x l (+ biases, negligible).
    w_elems = sum(a * b for a, b in zip(widths, out_widths))
    weights = w_elems * FLOAT_BYTES

    # (2) input features.
    input_features = n * f * FLOAT_BYTES

    # (3)+(4) per-layer aggregation outputs and MLP outputs, all retained
    # for backprop: aggregation outputs are N x width_in per layer, MLP
    # outputs N x width_out per layer.
    act_elems = n * (sum(widths) + sum(out_widths))
    activations = act_elems * FLOAT_BYTES

    # Backprop gradients mirror the activations of one live layer chain
    # (the paper stores intermediates; gradient buffers are transient but
    # peak at roughly the widest pair of layers).
    gradients = n * (max(widths) + max(out_widths)) * FLOAT_BYTES

    # Optimizer: Adam keeps m and v per weight; SGD-momentum one slot.
    opt_slots = {"adam": 2, "sgd": 1}.get(optimizer, 2)
    optimizer_state = w_elems * opt_slots * FLOAT_BYTES

    # Communication buffers over the split vertices.
    s = n * split_fraction
    algo = algorithm.lower()
    if algo == "0c" or split_fraction == 0.0:
        comm = 0.0
    elif algo in ("cd-0", "cd0"):
        # One layer's up+down staging at a time (send + recv), at the
        # widest exchanged feature width.
        comm = 2 * 2 * s * max(widths) * FLOAT_BYTES
    else:  # cd-r: all layers' delayed messages live simultaneously
        comm = 2 * 2 * s * sum(widths) * FLOAT_BYTES
    return MemoryModel(
        weights=weights,
        input_features=input_features,
        activations=activations,
        gradients=gradients,
        optimizer_state=optimizer_state,
        comm_buffers=comm,
    )


def papers_partition_vertices(num_partitions: int, replication_factor: float) -> float:
    """Partition vertex count for OGBN-Papers at a given partitioning.

    Clones multiply the resident vertex count: ``N_p = |V| * rf / P``.
    """
    papers_vertices = 111_059_956
    return papers_vertices * replication_factor / num_partitions
