"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` on old setuptools needs
``bdist_wheel``; offline boxes can instead run ``python setup.py develop``
(see README).  Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
